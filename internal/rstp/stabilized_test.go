package rstp

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/timed"
	"repro/internal/wire"
)

// procChaosPlans is the process-fault half of the chaos matrix: every
// plan heals (each crash restarts, corruption is transient), so a
// stabilized run must not only stay safe but converge to Y = X.
type procChaosPlan struct {
	name string
	mk   func() *faults.ProcPlan
}

func procChaosPlans() []procChaosPlan {
	return []procChaosPlan{
		{"crash-t", func() *faults.ProcPlan {
			return faults.NewProcPlan(41,
				faults.ProcFault{Proc: sim.ProcTransmitter, From: 60, To: 240, Crash: true})
		}},
		{"crash-r", func() *faults.ProcPlan {
			return faults.NewProcPlan(42,
				faults.ProcFault{Proc: sim.ProcReceiver, From: 60, To: 240, Crash: true})
		}},
		{"crash-both", func() *faults.ProcPlan {
			return faults.NewProcPlan(43,
				faults.ProcFault{Proc: sim.ProcTransmitter, From: 60, To: 200, Crash: true},
				faults.ProcFault{Proc: sim.ProcReceiver, From: 260, To: 420, Crash: true})
		}},
		{"ckpt-corrupt-t", func() *faults.ProcPlan {
			return faults.NewProcPlan(44,
				faults.ProcFault{Proc: sim.ProcTransmitter, From: 80, To: 240, Crash: true, Corrupt: true})
		}},
		{"ckpt-corrupt-r", func() *faults.ProcPlan {
			return faults.NewProcPlan(45,
				faults.ProcFault{Proc: sim.ProcReceiver, From: 80, To: 240, Crash: true, Corrupt: true})
		}},
		{"live-corrupt-t", func() *faults.ProcPlan {
			return faults.NewProcPlan(46,
				faults.ProcFault{Proc: sim.ProcTransmitter, From: 150, Corrupt: true})
		}},
		{"live-corrupt-r", func() *faults.ProcPlan {
			return faults.NewProcPlan(47,
				faults.ProcFault{Proc: sim.ProcReceiver, From: 150, Corrupt: true})
		}},
		{"rate-t", func() *faults.ProcPlan {
			return faults.NewProcPlan(48,
				faults.ProcFault{Proc: sim.ProcTransmitter, From: 60, To: 300, RateFactor: 4})
		}},
	}
}

func TestStabilizedPayloadCodecRoundTrip(t *testing.T) {
	for epoch := int64(1); epoch < 50; epoch += 7 {
		for tag := 0; tag < 64; tag += 5 {
			inner := wire.DataPacket(wire.Symbol(tag % 4))
			inner.Tag = tag
			w := stWrapPayload(epoch, inner)
			ctrl, _, gotEpoch, _, got, ok := stDecode(w, wire.TtoR)
			if ctrl || !ok || gotEpoch != epoch&stPayloadEpochMask || got.Tag != tag || got.Symbol != inner.Symbol {
				t.Fatalf("payload epoch=%d tag=%d: ctrl=%v ok=%v epoch=%d tag=%d", epoch, tag, ctrl, ok, gotEpoch, got.Tag)
			}
		}
	}
}

func TestStabilizedCtrlCodecRoundTrip(t *testing.T) {
	for _, kind := range []int{stResync, stReport, stRewind, stReady} {
		for epoch := int64(1); epoch < 100; epoch += 13 {
			for count := int64(0); count < 300; count += 71 {
				p := stCtrlPacket(kind, epoch, count, wire.RtoT)
				ctrl, gotKind, gotEpoch, gotCount, _, ok := stDecode(p, wire.RtoT)
				if !ctrl || !ok || gotKind != kind || gotEpoch != epoch || gotCount != count {
					t.Fatalf("%s epoch=%d count=%d: ctrl=%v ok=%v kind=%d epoch=%d count=%d",
						stKindName(kind), epoch, count, ctrl, ok, gotKind, gotEpoch, gotCount)
				}
			}
		}
	}
}

// TestStabilizedCtrlChecksum: damaging any header field of a control
// packet must flip its checksum verdict; damaging only the symbol must
// not (the channel fault injector corrupts symbols, and control packets
// carry no payload symbol — they are immune to it by construction).
func TestStabilizedCtrlChecksum(t *testing.T) {
	p := stCtrlPacket(stReport, 7, 42, wire.RtoT)
	for _, delta := range []int{1 << stKindShift, 1 << stCountShift, 1 << stEpochShift} {
		bad := p
		bad.Tag += delta
		if _, _, _, _, _, ok := stDecode(bad, wire.RtoT); ok {
			t.Fatalf("tag damage %#x passed the checksum", delta)
		}
	}
	bad := p
	bad.Symbol += 7
	if _, _, _, _, _, ok := stDecode(bad, wire.RtoT); !ok {
		t.Fatal("symbol damage rejected a control packet that does not use the symbol")
	}
	// A control packet checksummed for one direction must not validate for
	// the other (guards against reflection).
	if _, _, _, _, _, ok := stDecode(p, wire.TtoR); ok {
		t.Fatal("control packet validated in the wrong direction")
	}
}

func TestCheckpointCodec(t *testing.T) {
	data := encodeCkpt(3, -7, 1<<40)
	vals, ok := decodeCkpt(data, 3)
	if !ok || vals[0] != 3 || vals[1] != -7 || vals[2] != 1<<40 {
		t.Fatalf("roundtrip: %v ok=%v", vals, ok)
	}
	for bit := 0; bit < len(data)*8; bit++ {
		bad := append([]byte(nil), data...)
		bad[bit/8] ^= 1 << (bit % 8)
		if _, ok := decodeCkpt(bad, 3); ok {
			t.Fatalf("bit %d flip passed the checksum", bit)
		}
	}
	if _, ok := decodeCkpt(data, 2); ok {
		t.Fatal("wrong field count accepted")
	}
	if _, ok := decodeCkpt(data[:len(data)-1], 3); ok {
		t.Fatal("truncated checkpoint accepted")
	}
}

func TestMemStoreIsolation(t *testing.T) {
	s := NewMemStore()
	orig := []byte{1, 2, 3}
	s.Save("k", orig)
	orig[0] = 9
	got, ok := s.Load("k")
	if !ok || got[0] != 1 {
		t.Fatalf("store aliased caller bytes: %v ok=%v", got, ok)
	}
	got[1] = 9
	again, _ := s.Load("k")
	if again[1] != 2 {
		t.Fatal("store aliased returned bytes")
	}
	if _, ok := s.Load("missing"); ok {
		t.Fatal("missing key reported present")
	}
}

// TestStabilizedFaultFree: with no faults at all the stabilizing layer is
// a pass-through, held to the full good(A) + Y = X standard in both its
// bare and stacked configurations.
func TestStabilizedFaultFree(t *testing.T) {
	for _, s := range chaosSolutions(t) {
		for _, ss := range []StabilizedSolution{
			Stabilize(s, StabilizeOptions{}),
			StabilizeHardened(Harden(s, HardenOptions{}), StabilizeOptions{}),
		} {
			t.Run(ss.String(), func(t *testing.T) {
				x := chaosInput(s, 6)
				run, err := ss.Run(x, RunOptions{})
				if err != nil {
					t.Fatal(err)
				}
				if v := ss.Verify(run, x); len(v) > 0 {
					t.Fatalf("fault-free stabilized run not good: %v (and %d more)", v[0], len(v)-1)
				}
				if run.Stabilization != nil {
					t.Fatalf("Stabilization report without a fault plan: %v", run.Stabilization)
				}
			})
		}
	}
}

// TestStabilizedCrashMatrix is the acceptance matrix for process faults:
// every protocol, in both the bare and the stacked wrapping, under every
// healing crash/corruption plan, keeps Y a prefix of X throughout and
// converges to Y = X with a finite reported stabilization time.
func TestStabilizedCrashMatrix(t *testing.T) {
	for _, s := range chaosSolutions(t) {
		for _, ss := range []StabilizedSolution{
			Stabilize(s, StabilizeOptions{}),
			StabilizeHardened(Harden(s, HardenOptions{}), StabilizeOptions{}),
		} {
			for _, pp := range procChaosPlans() {
				t.Run(ss.String()+"/"+pp.name, func(t *testing.T) {
					x := chaosInput(s, 12)
					plan := pp.mk()
					run, err := ss.Run(x, RunOptions{ProcFaults: plan, MaxTicks: 500_000})
					if err != nil {
						t.Fatalf("run failed to complete: %v (stab: %v)", err, run.Stabilization)
					}
					if v := ss.VerifySafety(run, x); len(v) > 0 {
						t.Fatalf("SAFETY violated under %s: %v", plan.Name(), v[0])
					}
					if v := ss.VerifyComplete(run, x); len(v) > 0 {
						t.Fatalf("convergence after heal failed under %s: %v", plan.Name(), v[0])
					}
					st := run.Stabilization
					if st == nil || !st.Measured {
						t.Fatalf("no measured Stabilization report: %v", st)
					}
					if !st.Stabilized {
						t.Fatalf("report says not stabilized: %v", st)
					}
					if st.SettleTicks < 0 || st.SettleTicks > 100_000 {
						t.Fatalf("settle time not finite/sane: %v", st)
					}
				})
			}
		}
	}
}

// TestStabilizedFullChaosMatrix stacks both wrappers and both fault
// planes: every protocol under every seeded channel plan of the PR 1
// matrix with a crash/corruption plan layered on top. Safety must hold
// throughout and the run must still converge to Y = X.
func TestStabilizedFullChaosMatrix(t *testing.T) {
	procPlan := func() *faults.ProcPlan {
		return faults.NewProcPlan(51,
			faults.ProcFault{Proc: sim.ProcTransmitter, From: 100, To: 260, Crash: true, Corrupt: true},
			faults.ProcFault{Proc: sim.ProcReceiver, From: 320, To: 480, Crash: true})
	}
	for _, s := range chaosSolutions(t) {
		for _, cp := range chaosPlans(chaosParams()) {
			ss := StabilizeHardened(Harden(s, HardenOptions{}), StabilizeOptions{})
			t.Run(ss.String()+"/"+cp.name, func(t *testing.T) {
				x := chaosInput(s, 6)
				chanPlan := cp.mk()
				run, err := ss.Run(x, RunOptions{Delay: chanPlan, ProcFaults: procPlan(), MaxTicks: 500_000})
				if err != nil {
					t.Fatalf("run failed to complete: %v (stab: %v)", err, run.Stabilization)
				}
				if v := ss.VerifySafety(run, x); len(v) > 0 {
					t.Fatalf("SAFETY violated under %s + %s: %v", chanPlan.Name(), run.Stabilization.Plan, v[0])
				}
				if v := ss.VerifyComplete(run, x); len(v) > 0 {
					t.Fatalf("convergence failed under %s: %v", chanPlan.Name(), v[0])
				}
				if st := run.Stabilization; st == nil || !st.Stabilized {
					t.Fatalf("not stabilized: %v", st)
				}
			})
		}
	}
}

// TestUnwrappedViolateUnderProcFaults is the companion failure-mode test:
// the same crash plans that the stabilized wrapper absorbs break every
// unwrapped protocol — the run wedges short of Y = X, and for the burst
// protocols the receiver even writes wrong bits (a prefix violation).
func TestUnwrappedViolateUnderProcFaults(t *testing.T) {
	breaking := []procChaosPlan{procChaosPlans()[1], procChaosPlans()[2]} // crash-r, crash-both
	sawPrefixViolation := false
	for _, s := range chaosSolutions(t) {
		for _, pp := range breaking {
			t.Run(s.String()+"/"+pp.name, func(t *testing.T) {
				x := chaosInput(s, 12)
				run, err := s.Run(x, RunOptions{ProcFaults: pp.mk(), MaxTicks: 100_000})
				complete := err == nil && len(timed.PrefixInvariant(run.Trace, x, true)) == 0
				if complete {
					t.Fatalf("unwrapped %s survived %s — the wrapper is not earning its keep", s, pp.name)
				}
				if len(timed.PrefixInvariant(run.Trace, x, false)) > 0 {
					sawPrefixViolation = true
				}
			})
		}
	}
	if !sawPrefixViolation {
		t.Error("no unwrapped run showed a prefix violation; expected the burst protocols to write wrong bits")
	}
}

// TestStabilizedSafetyUnderCrashForever: a transmitter that never comes
// back forfeits liveness by construction, never safety — and the report
// says so.
func TestStabilizedSafetyUnderCrashForever(t *testing.T) {
	p := chaosParams()
	s, err := Beta(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	ss := Stabilize(s, StabilizeOptions{})
	x := chaosInput(s, 12)
	plan := faults.NewProcPlan(61,
		faults.ProcFault{Proc: sim.ProcTransmitter, From: 60, Crash: true})
	run, err := ss.Run(x, RunOptions{ProcFaults: plan, MaxTicks: 20_000})
	if err == nil {
		t.Fatal("run completed with the transmitter down forever")
	}
	if v := ss.VerifySafety(run, x); len(v) > 0 {
		t.Fatalf("safety violated: %v", v[0])
	}
	if got := len(run.Writes()); got >= len(x) {
		t.Fatalf("wrote all %d bits without a transmitter", got)
	}
	st := run.Stabilization
	if st == nil || st.Stabilized {
		t.Fatalf("unhealed plan reported stabilized: %v", st)
	}
	if st.DownTicks[0] == 0 {
		t.Fatalf("no downtime recorded: %v", st)
	}
}

// TestStabilizedSharedStore: a caller-provided StateStore is actually
// used — construction checkpoints both endpoints into it.
func TestStabilizedSharedStore(t *testing.T) {
	p := chaosParams()
	s, err := Beta(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	store := NewMemStore()
	ss := Stabilize(s, StabilizeOptions{Store: store})
	if _, _, err := ss.NewPair(chaosInput(s, 2)); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"t", "r"} {
		data, ok := store.Load(key)
		if !ok {
			t.Fatalf("no %q checkpoint after construction", key)
		}
		n := 1
		if key == "t" {
			n = 2
		}
		vals, ok := decodeCkpt(data, n)
		if !ok || vals[0] != 1 {
			t.Fatalf("%q checkpoint = %v ok=%v, want initial epoch 1", key, vals, ok)
		}
	}
}

func TestStabilizedString(t *testing.T) {
	p := chaosParams()
	s, _ := Beta(p, 4)
	ss := StabilizeHardened(Harden(s, HardenOptions{}), StabilizeOptions{})
	if got := ss.String(); !strings.Contains(got, "stabilized(hardened(") || !strings.Contains(got, "beta") {
		t.Fatalf("String() = %q", got)
	}
	if ss.Opts.RTOSteps <= 0 || ss.Opts.MismatchLimit <= 0 {
		t.Fatalf("defaults not resolved: %+v", ss.Opts)
	}
	bad := chaosInput(s, 1)[:1] // not a block multiple
	if _, _, err := ss.NewPair(bad); err == nil && ss.BlockBits > 1 {
		t.Fatal("NewPair accepted a non-block input")
	}
}

// TestMemStoreConcurrentSaveLoad is the -race regression for the shared
// serving store: one MemStore hammered by concurrent sessions (the
// session.Server passes one store to every endpoint goroutine) must
// never tear a checkpoint — every Load returns a value some Save wrote
// in full, pinned by the checksum.
func TestMemStoreConcurrentSaveLoad(t *testing.T) {
	store := NewMemStore()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Two goroutines share each key: concurrent writers and
			// readers on the same cell, the data-race shape.
			key := fmt.Sprintf("s%d/t", g%4)
			for i := 0; i < 2000; i++ {
				store.Save(key, encodeCkpt(int64(i), int64(g)))
				data, ok := store.Load(key)
				if !ok {
					t.Errorf("key %q vanished", key)
					return
				}
				if _, ok := decodeCkpt(data, 2); !ok {
					t.Errorf("key %q: torn checkpoint %x", key, data)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestStabilizedKeyedPair: NewPairKeyed namespaces the persisted keys by
// the given prefix, so many sessions can share one store.
func TestStabilizedKeyedPair(t *testing.T) {
	p := chaosParams()
	s, err := Beta(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	store := NewMemStore()
	ss := Stabilize(s, StabilizeOptions{Store: store})
	if _, _, err := ss.NewPairKeyed("s9/", chaosInput(s, 2)); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"s9/t", "s9/r"} {
		if _, ok := store.Load(key); !ok {
			t.Fatalf("no %q checkpoint after keyed construction", key)
		}
	}
	if _, ok := store.Load("t"); ok {
		t.Fatal("keyed construction leaked the bare \"t\" key")
	}
	if ss.Opts.KeyPrefix != "" {
		t.Fatalf("NewPairKeyed mutated the receiver's options: %q", ss.Opts.KeyPrefix)
	}
}

// TestStabilizedRecoverFromStore: with Recover set, NewPair reloads the
// store's checkpoints instead of writing fresh ones — the transmitter
// resumes its (epoch, cursor) and probes RESYNC, the receiver resumes
// its epoch and volunteers REPORT, and ResumeTape restores the durable
// output-tape length the REPORT must carry.
func TestStabilizedRecoverFromStore(t *testing.T) {
	p := chaosParams()
	s, err := Beta(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	store := NewMemStore()
	x := chaosInput(s, 3)
	blockBits := int64(s.BlockBits)

	// Plant mid-session checkpoints, as a crashed process would leave.
	ss := Stabilize(s, StabilizeOptions{Store: store})
	t0, r0, err := ss.NewPair(x)
	if err != nil {
		t.Fatal(err)
	}
	te0, re0 := t0.(*stableEnd), r0.(*stableEnd)
	te0.epoch, te0.base = 5, blockBits
	te0.persist()
	re0.epoch = 5
	re0.persist()

	// A restarted process builds with Recover: checkpoints reload.
	rec := Stabilize(s, StabilizeOptions{Store: store, Recover: true})
	t1, r1, err := rec.NewPair(x)
	if err != nil {
		t.Fatal(err)
	}
	te, re := t1.(*stableEnd), r1.(*stableEnd)
	if te.epoch != 5 || te.base != blockBits {
		t.Fatalf("transmitter resumed (epoch=%d base=%d), want (5, %d)", te.epoch, te.base, blockBits)
	}
	if te.inner != nil || te.synced {
		t.Fatal("recovering transmitter should be in the RESYNC handshake, not live")
	}
	if re.epoch != 5 || !re.announce {
		t.Fatalf("receiver resumed (epoch=%d announce=%v), want (5, true)", re.epoch, re.announce)
	}
	re.ResumeTape(2 * blockBits)
	if re.writes != 2*blockBits {
		t.Fatalf("ResumeTape: writes = %d, want %d", re.writes, 2*blockBits)
	}
	te.ResumeTape(99)
	if te.x == nil || te.writes == 99 {
		t.Fatal("ResumeTape must be a no-op on the transmitter")
	}

	// The handshake the pair wakes up into must REPORT the resumed tape
	// length and rewind to a block boundary at or below it.
	if err := te.resync(re.epoch, re.writes); err != nil {
		t.Fatal(err)
	}
	if te.base != 2*blockBits || te.epoch != 6 {
		t.Fatalf("resync rewound to (epoch=%d base=%d), want (6, %d)", te.epoch, te.base, 2*blockBits)
	}

	// Recover against an EMPTY store must read as "know nothing" and
	// still enter the handshake rather than fabricating a session.
	empty := Stabilize(s, StabilizeOptions{Store: NewMemStore(), Recover: true})
	t2, _, err := empty.NewPair(x)
	if err != nil {
		t.Fatal(err)
	}
	if te2 := t2.(*stableEnd); te2.epoch != 0 || te2.inner != nil {
		t.Fatalf("empty-store recovery: epoch=%d inner=%v, want epoch 0 in handshake", te2.epoch, te2.inner)
	}
}
