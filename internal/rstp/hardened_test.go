package rstp

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/chanmodel"
	"repro/internal/faults"
	"repro/internal/sim"
	"repro/internal/wire"
)

func chaosParams() Params { return Params{C1: 2, C2: 3, D: 12} }

func chaosSolutions(t *testing.T) []Solution {
	t.Helper()
	p := chaosParams()
	a, err := Alpha(p)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Beta(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	g, err := Gamma(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	return []Solution{a, b, g}
}

// chaosInput builds a non-trivial input of n whole blocks.
func chaosInput(s Solution, blocks int) []wire.Bit {
	x := make([]wire.Bit, s.BlockBits*blocks)
	for i := range x {
		if i%3 == 0 || i%7 == 2 {
			x[i] = wire.One
		}
	}
	return x
}

func TestHardenedCodecRoundTrip(t *testing.T) {
	for seq := int64(0); seq < 100; seq++ {
		inner := wire.DataPacket(wire.Symbol(seq % 4))
		w := hardWrap(seq, inner, wire.TtoR)
		val, ctrl, ok := hardDecode(w, wire.TtoR)
		if !ok || ctrl || val != seq {
			t.Fatalf("payload roundtrip seq=%d: val=%d ctrl=%v ok=%v", seq, val, ctrl, ok)
		}
		a := hardAckPacket(seq, wire.RtoT)
		val, ctrl, ok = hardDecode(a, wire.RtoT)
		if !ok || !ctrl || val != seq {
			t.Fatalf("ack roundtrip cum=%d: val=%d ctrl=%v ok=%v", seq, val, ctrl, ok)
		}
	}
}

// TestHardenedCodecDetectsCorruption: every symbol offset the fault
// injector can apply (nonzero mod 16) must flip the checksum.
func TestHardenedCodecDetectsCorruption(t *testing.T) {
	for seq := int64(0); seq < 32; seq++ {
		w := hardWrap(seq, wire.DataPacket(wire.Symbol(seq%4)), wire.TtoR)
		for delta := wire.Symbol(1); delta < 16; delta++ {
			bad := w
			bad.Symbol += delta
			if _, _, ok := hardDecode(bad, wire.TtoR); ok {
				t.Fatalf("seq=%d delta=%d: corruption passed the checksum", seq, delta)
			}
		}
		a := hardAckPacket(seq, wire.RtoT)
		bad := a
		bad.Symbol += 7
		if _, _, ok := hardDecode(bad, wire.RtoT); ok {
			t.Fatalf("cum=%d: corrupted ack passed the checksum", seq)
		}
	}
}

// TestHardenedFaultFree: on a healthy channel the hardened solutions are
// held to the full good(A) + Y = X standard, like their inner protocols.
func TestHardenedFaultFree(t *testing.T) {
	for _, s := range chaosSolutions(t) {
		hs := Harden(s, HardenOptions{})
		t.Run(hs.String(), func(t *testing.T) {
			x := chaosInput(s, 6)
			run, err := hs.Run(x, RunOptions{})
			if err != nil {
				t.Fatal(err)
			}
			if v := hs.Verify(run, x); len(v) > 0 {
				t.Fatalf("fault-free hardened run not good: %v (and %d more)", v[0], len(v)-1)
			}
			if run.Degradation == nil || !run.Degradation.ModelHolds() {
				t.Fatalf("healthy channel flagged: %v", run.Degradation)
			}
		})
	}
}

// chaosPlan names one fault plan of the matrix. Each plan's windows all
// close, so the hardened runs must not only stay safe but finish.
type chaosPlan struct {
	name    string
	mk      func() *faults.Plan
	certain bool // the plan violates the model on every affected packet
}

func chaosPlans(p Params) []chaosPlan {
	inner := func() chanmodel.DelayPolicy { return chanmodel.MaxDelay{D: p.D} }
	return []chaosPlan{
		{"loss", func() *faults.Plan {
			return faults.NewPlan(11, inner(), faults.Fault{From: 0, To: 600, Drop: 0.3})
		}, false},
		{"dup", func() *faults.Plan {
			return faults.NewPlan(12, inner(), faults.Fault{From: 0, To: 600, Dup: 0.4})
		}, false},
		{"corrupt", func() *faults.Plan {
			return faults.NewPlan(13, inner(), faults.Fault{From: 0, To: 600, Corrupt: 0.3})
		}, false},
		{"blackout", func() *faults.Plan {
			return faults.NewPlan(14, inner(), faults.Fault{From: 60, To: 240, Blackout: true})
		}, true},
		{"late", func() *faults.Plan {
			return faults.NewPlan(15, inner(), faults.Fault{From: 0, To: 400, ExtraDelay: 3 * p.D})
		}, true},
		{"combo", func() *faults.Plan {
			return faults.NewPlan(16, inner(),
				faults.Fault{From: 0, To: 300, Drop: 0.25, Dup: 0.25, Corrupt: 0.25},
				faults.Fault{From: 300, To: 450, Blackout: true},
				faults.Fault{From: 450, To: 600, ExtraDelay: 2 * p.D},
			)
		}, true},
	}
}

// TestHardenedChaosMatrix is the acceptance matrix: every protocol under
// every healing fault plan reports zero prefix violations and, because
// all windows close, completes with Y = X.
func TestHardenedChaosMatrix(t *testing.T) {
	for _, s := range chaosSolutions(t) {
		for _, cp := range chaosPlans(chaosParams()) {
			hs := Harden(s, HardenOptions{})
			t.Run(hs.String()+"/"+cp.name, func(t *testing.T) {
				x := chaosInput(s, 6)
				plan := cp.mk()
				run, err := hs.Run(x, RunOptions{Delay: plan, MaxTicks: 500_000})
				if err != nil {
					t.Fatalf("hardened run failed to complete: %v", err)
				}
				if v := hs.VerifySafety(run, x); len(v) > 0 {
					t.Fatalf("SAFETY violated under %s: %v", plan.Name(), v[0])
				}
				if v := hs.VerifyComplete(run, x); len(v) > 0 {
					t.Fatalf("liveness after heal failed under %s: %v", plan.Name(), v[0])
				}
				if cp.certain && run.Degradation.ModelHolds() {
					t.Fatalf("plan %s injected nothing the watchdog saw", plan.Name())
				}
			})
		}
	}
}

// TestHardenedSafetyUnderUnhealedPlan: a blackout that outlives the run
// forfeits liveness (the run hits its cap) but never safety — the output
// tape holds a correct, possibly empty, prefix of X.
func TestHardenedSafetyUnderUnhealedPlan(t *testing.T) {
	p := chaosParams()
	s, err := Beta(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	hs := Harden(s, HardenOptions{})
	x := chaosInput(s, 6)
	plan := faults.NewPlan(21, chanmodel.MaxDelay{D: p.D},
		faults.Fault{From: 30, To: 1 << 40, Blackout: true})
	run, err := hs.Run(x, RunOptions{Delay: plan, MaxTicks: 20_000})
	if !errors.Is(err, sim.ErrNoProgress) {
		t.Fatalf("run under a permanent blackout ended with %v, want ErrNoProgress", err)
	}
	if v := hs.VerifySafety(run, x); len(v) > 0 {
		t.Fatalf("safety violated: %v", v[0])
	}
	if got := len(run.Writes()); got >= len(x) {
		t.Fatalf("run wrote all %d bits through a permanent blackout", got)
	}
	if run.Degradation == nil || run.Degradation.Lost == 0 {
		t.Fatalf("watchdog missed the blackout: %v", run.Degradation)
	}
}

// TestHardenedRecoversThroughput: after the last fault window closes the
// layer drains its backlog and finishes; the final write lands after the
// heal, and a healthy tail of the same length as the faulty head costs
// bounded extra time (the backoff cap guarantees a probe soon after the
// heal).
func TestHardenedRecoversThroughput(t *testing.T) {
	p := chaosParams()
	s, err := Beta(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	hs := Harden(s, HardenOptions{})
	x := chaosInput(s, 8)
	plan := faults.NewPlan(31, chanmodel.MaxDelay{D: p.D},
		faults.Fault{From: 0, To: 500, Blackout: true})
	run, err := hs.Run(x, RunOptions{Delay: plan, MaxTicks: 500_000})
	if err != nil {
		t.Fatal(err)
	}
	if v := hs.VerifyComplete(run, x); len(v) > 0 {
		t.Fatalf("did not recover: %v", v[0])
	}
	last, ok := run.LastWriteTime()
	if !ok || last < plan.End() {
		t.Fatalf("last write at %d, before the heal at %d?", last, plan.End())
	}
	// Recovery bound: base RTO ≤ 16× backoff, plus drain of the whole
	// input at the slowest schedule. Generous but finite.
	o := hs.Opts
	budget := plan.End() + o.RTOSteps*(1<<o.BackoffCap)*p.C2 + 40*int64(len(x))*p.C2
	if last > budget {
		t.Fatalf("recovery too slow: last write %d, budget %d", last, budget)
	}
}

func TestHardenedString(t *testing.T) {
	p := chaosParams()
	s, _ := Beta(p, 4)
	hs := Harden(s, HardenOptions{})
	if got := hs.String(); !strings.Contains(got, "hardened(") || !strings.Contains(got, "beta") {
		t.Fatalf("String() = %q", got)
	}
	if hs.Opts.Window <= 0 || hs.Opts.RTOSteps <= 0 || hs.Opts.BackoffCap <= 0 {
		t.Fatalf("defaults not resolved: %+v", hs.Opts)
	}
}
