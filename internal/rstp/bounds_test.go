package rstp

import (
	"math"
	"testing"

	"repro/internal/multiset"
)

func TestAlphaEffortFormula(t *testing.T) {
	tests := []struct {
		p    Params
		want float64
	}{
		{p: Params{C1: 1, C2: 1, D: 8}, want: 8},    // d·c2/c1
		{p: Params{C1: 2, C2: 3, D: 12}, want: 18},  // 6·3
		{p: Params{C1: 2, C2: 5, D: 11}, want: 30},  // ⌈11/2⌉·5
		{p: Params{C1: 4, C2: 8, D: 64}, want: 128}, // 16·8
	}
	for _, tt := range tests {
		if got := AlphaEffort(tt.p); got != tt.want {
			t.Errorf("AlphaEffort(%v) = %g, want %g", tt.p, got, tt.want)
		}
	}
}

func TestPassiveLowerBoundFormula(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 12} // δ1 = 6
	k := 4
	want := float64(6*3) / multiset.Log2Zeta(4, 6)
	if got := PassiveLowerBound(p, k); math.Abs(got-want) > 1e-12 {
		t.Errorf("PassiveLowerBound = %g, want %g", got, want)
	}
}

func TestActiveLowerBoundFormula(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 12} // δ2 = 4
	k := 4
	want := 12 / multiset.Log2Zeta(4, 4)
	if got := ActiveLowerBound(p, k); math.Abs(got-want) > 1e-12 {
		t.Errorf("ActiveLowerBound = %g, want %g", got, want)
	}
}

func TestBetaUpperBoundFormula(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 12} // δ1 = 6, ⌈d/c1⌉ = 6 -> 2δ1c2 = 36
	k := 2                           // μ_2(6) = 7, ⌊log2⌋ = 2
	if got := BetaUpperBound(p, k); got != 18 {
		t.Errorf("BetaUpperBound = %g, want 18", got)
	}
	// Non-divisible d/c1: round is δ1 + ⌈d/c1⌉ steps.
	p2 := Params{C1: 2, C2: 5, D: 11} // δ1 = 5, ceil = 6, round = 11·5 = 55; μ_2(5)=6, L=2
	if got := BetaUpperBound(p2, 2); got != 27.5 {
		t.Errorf("BetaUpperBound (non-divisible) = %g, want 27.5", got)
	}
}

func TestGammaUpperBoundFormula(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 12} // δ2 = 4; 3d + c2 = 39
	k := 2                           // μ_2(4) = 5, L = 2
	if got := GammaUpperBound(p, k); got != 19.5 {
		t.Errorf("GammaUpperBound = %g, want 19.5", got)
	}
}

// TestBoundsDegenerate: k = 1 (or otherwise unencodable) yields +Inf
// ceilings and MinRounds, never a panic or a zero division.
func TestBoundsDegenerate(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 12}
	if !math.IsInf(BetaUpperBound(p, 1), 1) {
		t.Error("BetaUpperBound(k=1) should be +Inf")
	}
	if !math.IsInf(GammaUpperBound(p, 1), 1) {
		t.Error("GammaUpperBound(k=1) should be +Inf")
	}
	if !math.IsInf(MinRoundsPassive(Params{C1: 100, C2: 100, D: 101}, 1, 8), 1) {
		t.Error("MinRoundsPassive with log ζ = 0 should be +Inf")
	}
	if v := PassiveTightness(p, 1); !math.IsNaN(v) {
		t.Errorf("PassiveTightness(k=1) = %g, want NaN", v)
	}
	if v := ActiveTightness(p, 1); !math.IsNaN(v) {
		t.Errorf("ActiveTightness(k=1) = %g, want NaN", v)
	}
}

// TestBoundsMonotoneInK: all four bounds weakly decrease as k grows.
func TestBoundsMonotoneInK(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 24}
	type fn struct {
		name string
		f    func(Params, int) float64
	}
	for _, b := range []fn{
		{name: "PassiveLowerBound", f: PassiveLowerBound},
		{name: "ActiveLowerBound", f: ActiveLowerBound},
		{name: "BetaUpperBound", f: BetaUpperBound},
		{name: "GammaUpperBound", f: GammaUpperBound},
	} {
		prev := math.Inf(1)
		for k := 2; k <= 256; k *= 2 {
			cur := b.f(p, k)
			if cur > prev+1e-9 {
				t.Errorf("%s increased at k=%d: %g -> %g", b.name, k, prev, cur)
			}
			prev = cur
		}
	}
}

// TestLowerBelowUpper across a wide grid: the theory's sanity condition.
func TestLowerBelowUpper(t *testing.T) {
	grid := []Params{
		{C1: 1, C2: 1, D: 2},
		{C1: 1, C2: 1, D: 16},
		{C1: 1, C2: 4, D: 16},
		{C1: 3, C2: 5, D: 31},
		{C1: 5, C2: 9, D: 100},
	}
	for _, p := range grid {
		for k := 2; k <= 128; k *= 2 {
			if lb, ub := PassiveLowerBound(p, k), BetaUpperBound(p, k); lb > ub+1e-9 {
				t.Errorf("%v k=%d: passive lb %g > ub %g", p, k, lb, ub)
			}
			if lb, ub := ActiveLowerBound(p, k), GammaUpperBound(p, k); lb > ub+1e-9 {
				t.Errorf("%v k=%d: active lb %g > ub %g", p, k, lb, ub)
			}
		}
	}
}

// TestMinRoundsPassiveGrowsLinearly in n.
func TestMinRoundsPassiveGrowsLinearly(t *testing.T) {
	p := Params{C1: 1, C2: 1, D: 5}
	a := MinRoundsPassive(p, 2, 100)
	b := MinRoundsPassive(p, 2, 200)
	if math.Abs(b-2*a) > 1e-9 {
		t.Errorf("MinRounds not linear: %g vs 2·%g", b, a)
	}
}
