package rstp

// Failure-mode documentation for the UNHARDENED protocols outside the
// model Δ(C(P)). The paper proves nothing there, and these tests pin
// down exactly how each solution breaks — the behaviours the hardened
// layer (hardened.go) exists to fix:
//
//   - Uniform excess delay preserves order, so all three still deliver
//     Y = X; only the delay-bound validator notices. Degradation in the
//     benign direction.
//   - A delay fault over a window reorders traffic across burst
//     boundaries: A^α writes out of order and A^β(k) decodes the wrong
//     multisets — both silently corrupt the output tape. A^γ(k) is
//     naturally immune because its ack clock stalls with the packets.
//   - Corruption either crashes the run (a symbol outside {0..k-1}
//     leaves the receiver's input signature) or silently corrupts Y.

import (
	"testing"

	"repro/internal/chanmodel"
	"repro/internal/faults"
	"repro/internal/timed"
)

// TestUnhardenedUniformExcessDelay: a uniform delay of d + excess keeps
// packet order, so every protocol still achieves Y = X; the only failures
// are delay-bound violations, which both Verify and the runtime watchdog
// report.
func TestUnhardenedUniformExcessDelay(t *testing.T) {
	p := chaosParams()
	for _, s := range chaosSolutions(t) {
		t.Run(s.String(), func(t *testing.T) {
			x := chaosInput(s, 4)
			run, err := s.Run(x, RunOptions{
				Delay:    chanmodel.ExceedBound{D: p.D, Excess: 6},
				MaxTicks: 200_000,
			})
			if err != nil {
				t.Fatalf("order-preserving excess stalled the run: %v", err)
			}
			if v := timed.PrefixInvariant(run.Trace, x, true); len(v) > 0 {
				t.Fatalf("uniform excess corrupted the output: %v", v[0])
			}
			v := s.Verify(run, x)
			if len(v) == 0 {
				t.Fatal("Verify missed the exceeded delay bound")
			}
			for _, each := range v {
				if each.Rule != "delay" {
					t.Fatalf("unexpected violation class %q: %v", each.Rule, each)
				}
			}
			if run.Degradation == nil || run.Degradation.Late == 0 {
				t.Fatalf("watchdog missed the late deliveries: %v", run.Degradation)
			}
		})
	}
}

// windowedDelayPlan delays only the first burst's worth of sends far
// beyond d, making them arrive interleaved with the next burst. The plan
// is probability-free, so the seed is irrelevant.
func windowedDelayPlan(p Params) *faults.Plan {
	return faults.NewPlan(1, chanmodel.Zero{},
		faults.Fault{From: 0, To: 20, ExtraDelay: 48})
}

// TestUnhardenedWindowedDelayCorruptsPassive: the reordering corrupts
// both r-passive protocols silently — the run completes, the validators
// alone reveal that Y is not a prefix of X.
func TestUnhardenedWindowedDelayCorruptsPassive(t *testing.T) {
	p := chaosParams()
	for _, mk := range []func() (Solution, error){
		func() (Solution, error) { return Alpha(p) },
		func() (Solution, error) { return Beta(p, 4) },
	} {
		s, err := mk()
		if err != nil {
			t.Fatal(err)
		}
		t.Run(s.String(), func(t *testing.T) {
			x := chaosInput(s, 4)
			run, err := s.Run(x, RunOptions{Delay: windowedDelayPlan(p), MaxTicks: 200_000})
			if err != nil {
				t.Fatalf("run did not complete: %v", err)
			}
			if v := timed.PrefixInvariant(run.Trace, x, false); len(v) == 0 {
				t.Fatalf("%s survived cross-burst reordering — failure mode gone?", s)
			}
		})
	}
}

// TestUnhardenedWindowedDelayGammaSafe: A^γ(k)'s ack clock stalls while
// packets are in flight, so even the windowed delay cannot reorder its
// bursts: the output stays correct, only the delay bound breaks.
func TestUnhardenedWindowedDelayGammaSafe(t *testing.T) {
	p := chaosParams()
	s, err := Gamma(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := chaosInput(s, 4)
	run, err := s.Run(x, RunOptions{Delay: windowedDelayPlan(p), MaxTicks: 200_000})
	if err != nil {
		t.Fatalf("gamma stalled: %v", err)
	}
	if v := timed.PrefixInvariant(run.Trace, x, true); len(v) > 0 {
		t.Fatalf("gamma output corrupted: %v", v[0])
	}
	for _, each := range s.Verify(run, x) {
		if each.Rule != "delay" {
			t.Fatalf("unexpected violation class %q: %v", each.Rule, each)
		}
	}
}

// TestUnhardenedCorruptionBreaksRun: with every packet corrupted, each
// unhardened protocol either crashes (the symbol leaves the encoded
// receiver's input signature, killing the simulation) or silently writes
// a wrong output. The hardened chaos matrix covers the fixed behaviour.
func TestUnhardenedCorruptionBreaksRun(t *testing.T) {
	p := chaosParams()
	for _, s := range chaosSolutions(t) {
		t.Run(s.String(), func(t *testing.T) {
			x := chaosInput(s, 4)
			plan := faults.NewPlan(2, chanmodel.MaxDelay{D: p.D},
				faults.Fault{From: 0, To: 1 << 40, Corrupt: 1})
			run, err := s.Run(x, RunOptions{Delay: plan, MaxTicks: 100_000})
			if err != nil {
				return // crashed out of the signature — documented failure mode
			}
			if v := timed.PrefixInvariant(run.Trace, x, false); len(v) == 0 {
				t.Fatalf("%s shrugged off total corruption", s)
			}
		})
	}
}

// TestHardenedFixesWindowedDelay closes the loop on the satellite: the
// same plan that silently corrupts unhardened A^β(k) leaves the hardened
// variant untouched — zero prefix violations and a complete output.
func TestHardenedFixesWindowedDelay(t *testing.T) {
	p := chaosParams()
	s, err := Beta(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	hs := Harden(s, HardenOptions{})
	x := chaosInput(s, 4)
	run, err := hs.Run(x, RunOptions{Delay: windowedDelayPlan(p), MaxTicks: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	if v := hs.VerifyComplete(run, x); len(v) > 0 {
		t.Fatalf("hardened beta failed under the windowed delay: %v", v[0])
	}
}
