package rstp

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/multiset"
	"repro/internal/wire"
)

// A^γ(k) — the active solution of Section 6.2, Figure 4 (the protocol idea
// is credited to Richard Beigel).
//
// The transmitter sends bursts of δ2 = ⌊d/c2⌋ packets (each burst encoding
// ⌊log2 μ_k(δ2)⌋ bits as a multiset) and then waits until it has received
// δ2 acknowledgements before starting the next burst. The receiver
// acknowledges every data packet with the single packet "ack"
// (|P^rt| = 1).
//
// Safety is ack-clocked rather than time-clocked: burst m+1 cannot start
// before every burst-m packet was received (each ack follows its recv),
// so bursts never interleave even if the channel violates the delay
// bound — only performance depends on d. Effort ≤ (3d + c2)/⌊log2 μ_k(δ2)⌋.

// GammaTransmitter is A^γ(k)'s transmitter At^γ(k).
type GammaTransmitter struct {
	m *ioa.Machine

	blocks [][]wire.Symbol
	bi     int // current block
	c      int // packets sent in the current block (paper's c)
	a      int // acks received in the current block (paper's a)
	burst  int // δ2
	bits   int
}

var _ ioa.Deterministic = (*GammaTransmitter)(nil)

// NewGammaTransmitter builds At^γ(k) for input x, which must be a multiple
// of GammaBlockBits(p, k) bits long.
func NewGammaTransmitter(p Params, k int, x []wire.Bit) (*GammaTransmitter, error) {
	codec, err := gammaCodec(p, k)
	if err != nil {
		return nil, err
	}
	bits := codec.BlockBits()
	if len(x)%bits != 0 {
		return nil, fmt.Errorf("rstp: gamma transmitter: |X| = %d is not a multiple of the block size %d", len(x), bits)
	}
	blocks := make([][]wire.Symbol, 0, len(x)/bits)
	for off := 0; off < len(x); off += bits {
		seq, err := codec.EncodeSeq(x[off : off+bits])
		if err != nil {
			return nil, fmt.Errorf("rstp: gamma transmitter: block at bit %d: %w", off, err)
		}
		blocks = append(blocks, seq)
	}
	t := &GammaTransmitter{
		blocks: blocks,
		burst:  p.Delta2(),
		bits:   bits,
	}
	if err := t.initMachine(); err != nil {
		return nil, err
	}
	return t, nil
}

// initMachine (re)binds the guarded commands to this instance; Fork calls
// it on copies.
func (t *GammaTransmitter) initMachine() error {
	m, err := ioa.NewMachine(TransmitterName, t.classify, t.onInput, []ioa.Command{
		{
			Name:  "send",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return t.bi < len(t.blocks) && t.c < t.burst },
			Act: func() ioa.Action {
				return wire.Send{Dir: wire.TtoR, P: wire.DataPacket(t.blocks[t.bi][t.c])}
			},
			Eff: func() { t.c++ },
		},
		{
			Name:  "idle_t",
			Class: ioa.ClassInternal,
			Pre:   func() bool { return t.bi < len(t.blocks) && t.c == t.burst },
			Act:   func() ioa.Action { return wire.Internal{Name: "idle_t"} },
			Eff:   func() {},
		},
	})
	if err != nil {
		return err
	}
	t.m = m
	return nil
}

// Fork returns an independent deep copy in the same state, for exhaustive
// state-space exploration (internal/mc). The immutable encoded blocks are
// shared.
func (t *GammaTransmitter) Fork() (*GammaTransmitter, error) {
	c := &GammaTransmitter{
		blocks: t.blocks, // immutable after construction
		bi:     t.bi,
		c:      t.c,
		a:      t.a,
		burst:  t.burst,
		bits:   t.bits,
	}
	if err := c.initMachine(); err != nil {
		return nil, err
	}
	return c, nil
}

// Snapshot returns a canonical key of the mutable state, for state-space
// memoisation.
func (t *GammaTransmitter) Snapshot() string {
	return fmt.Sprintf("bi=%d c=%d a=%d", t.bi, t.c, t.a)
}

func gammaCodec(p Params, k int) (*multiset.Codec, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if k < 2 {
		return nil, fmt.Errorf("rstp: gamma needs a packet alphabet of size k >= 2, got %d", k)
	}
	return multiset.NewCodec(k, p.Delta2())
}

// GammaBlockBits returns ⌊log2 μ_k(δ2)⌋, the bits A^γ(k) transmits per
// burst.
func GammaBlockBits(p Params, k int) int {
	return multiset.BlockBits(k, p.Delta2())
}

func (t *GammaTransmitter) classify(a ioa.Action) ioa.Class {
	switch act := a.(type) {
	case wire.Send:
		if act.Dir == wire.TtoR && act.P.Kind == wire.Data {
			return ioa.ClassOutput
		}
	case wire.Recv:
		if act.Dir == wire.RtoT && act.P.Kind == wire.Ack {
			return ioa.ClassInput
		}
	case wire.Internal:
		if act.Name == "idle_t" {
			return ioa.ClassInternal
		}
	}
	return ioa.ClassNone
}

func (t *GammaTransmitter) onInput(act ioa.Action) error {
	if _, ok := act.(wire.Recv); !ok {
		return fmt.Errorf("rstp: gamma transmitter: unexpected input %v: %w", act, ioa.ErrNotInSignature)
	}
	t.a++
	if t.a == t.burst {
		t.a = 0
		t.c = 0
		t.bi++
	}
	return nil
}

// Name returns "t".
func (t *GammaTransmitter) Name() string { return t.m.Name() }

// Classify places an action in the signature.
func (t *GammaTransmitter) Classify(a ioa.Action) ioa.Class { return t.m.Classify(a) }

// NextLocal returns the unique enabled local action.
func (t *GammaTransmitter) NextLocal() (ioa.Action, bool) { return t.m.NextLocal() }

// Apply performs a transition.
func (t *GammaTransmitter) Apply(a ioa.Action) error { return t.m.Apply(a) }

// DeterministicIOA marks the automaton deterministic.
func (t *GammaTransmitter) DeterministicIOA() bool { return true }

// Done reports whether every block has been sent and fully acknowledged.
func (t *GammaTransmitter) Done() bool { return t.bi >= len(t.blocks) }

// Burst returns the burst size δ2.
func (t *GammaTransmitter) Burst() int { return t.burst }

// GammaReceiver is A^γ(k)'s receiver Ar^γ(k). Figure 4 leaves the order of
// its simultaneously enabled send(ack) and write actions open; we fix the
// deterministic priority send(ack) > write > idle (acknowledging first
// keeps the transmitter's pipeline moving).
type GammaReceiver struct {
	m *ioa.Machine

	codec *multiset.Codec
	burst int
	k     int
	a     multiset.Multiset
	j     int // unacknowledged packets (paper's j)
	queue []wire.Bit
	next  int
}

var _ ioa.Deterministic = (*GammaReceiver)(nil)

// NewGammaReceiver builds Ar^γ(k).
func NewGammaReceiver(p Params, k int) (*GammaReceiver, error) {
	codec, err := gammaCodec(p, k)
	if err != nil {
		return nil, err
	}
	r := &GammaReceiver{
		codec: codec,
		burst: p.Delta2(),
		k:     k,
		a:     multiset.New(k),
	}
	if err := r.initMachine(); err != nil {
		return nil, err
	}
	return r, nil
}

// initMachine (re)binds the guarded commands to this instance; Fork calls
// it on copies.
func (r *GammaReceiver) initMachine() error {
	m, err := ioa.NewMachine(ReceiverName, r.classify, r.onInput, []ioa.Command{
		{
			Name:  "send_ack",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return r.j > 0 },
			Act:   func() ioa.Action { return wire.Send{Dir: wire.RtoT, P: wire.AckPacket()} },
			Eff:   func() { r.j-- },
		},
		{
			Name:  "write",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return r.next < len(r.queue) },
			Act:   func() ioa.Action { return wire.Write{M: r.queue[r.next]} },
			Eff:   func() { r.next++ },
		},
		{
			Name:  "idle_r",
			Class: ioa.ClassInternal,
			Pre:   func() bool { return true },
			Act:   func() ioa.Action { return wire.Internal{Name: "idle_r"} },
			Eff:   func() {},
		},
	})
	if err != nil {
		return err
	}
	r.m = m
	return nil
}

// Fork returns an independent deep copy in the same state, for exhaustive
// state-space exploration (internal/mc).
func (r *GammaReceiver) Fork() (*GammaReceiver, error) {
	c := &GammaReceiver{
		codec: r.codec, // immutable
		burst: r.burst,
		k:     r.k,
		a:     r.a.Clone(),
		j:     r.j,
		queue: append([]wire.Bit(nil), r.queue...),
		next:  r.next,
	}
	if err := c.initMachine(); err != nil {
		return nil, err
	}
	return c, nil
}

// Snapshot returns a canonical key of the mutable state, for state-space
// memoisation.
func (r *GammaReceiver) Snapshot() string {
	return fmt.Sprintf("A=%s j=%d q=%s next=%d", r.a.Key(), r.j, wire.BitsToString(r.queue), r.next)
}

// WrittenBits returns Y: the bits written so far, in order.
func (r *GammaReceiver) WrittenBits() []wire.Bit {
	return append([]wire.Bit(nil), r.queue[:r.next]...)
}

func (r *GammaReceiver) classify(a ioa.Action) ioa.Class {
	switch act := a.(type) {
	case wire.Recv:
		// The input alphabet is exactly P^tr = {0, ..., k-1}.
		if act.Dir == wire.TtoR && act.P.Kind == wire.Data &&
			act.P.Symbol >= 0 && int(act.P.Symbol) < r.k {
			return ioa.ClassInput
		}
	case wire.Send:
		if act.Dir == wire.RtoT && act.P.Kind == wire.Ack {
			return ioa.ClassOutput
		}
	case wire.Write:
		return ioa.ClassOutput
	case wire.Internal:
		if act.Name == "idle_r" {
			return ioa.ClassInternal
		}
	}
	return ioa.ClassNone
}

func (r *GammaReceiver) onInput(act ioa.Action) error {
	recv, ok := act.(wire.Recv)
	if !ok {
		return fmt.Errorf("rstp: gamma receiver: unexpected input %v: %w", act, ioa.ErrNotInSignature)
	}
	r.j++
	if err := r.a.Add(recv.P.Symbol); err != nil {
		return fmt.Errorf("rstp: gamma receiver: %w", err)
	}
	if r.a.Size() == r.burst {
		bits, err := r.codec.Decode(r.a)
		if err != nil {
			return fmt.Errorf("rstp: gamma receiver: decode burst: %w", err)
		}
		r.queue = append(r.queue, bits...)
		r.a.Clear()
	}
	return nil
}

// Name returns "r".
func (r *GammaReceiver) Name() string { return r.m.Name() }

// Classify places an action in the signature.
func (r *GammaReceiver) Classify(a ioa.Action) ioa.Class { return r.m.Classify(a) }

// NextLocal returns the unique enabled local action.
func (r *GammaReceiver) NextLocal() (ioa.Action, bool) { return r.m.NextLocal() }

// Apply performs a transition.
func (r *GammaReceiver) Apply(a ioa.Action) error { return r.m.Apply(a) }

// DeterministicIOA marks the automaton deterministic.
func (r *GammaReceiver) DeterministicIOA() bool { return true }

// Written returns the number of bits written.
func (r *GammaReceiver) Written() int { return r.next }

// Unacked returns the number of packets not yet acknowledged.
func (r *GammaReceiver) Unacked() int { return r.j }
