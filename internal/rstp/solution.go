package rstp

import (
	"fmt"

	"repro/internal/chanmodel"
	"repro/internal/ioa"
	"repro/internal/sim"
	"repro/internal/timed"
	"repro/internal/wire"
)

// Kind names one of the paper's three solutions.
type Kind string

const (
	// KindAlpha is the simple r-passive solution A^α (Figure 1).
	KindAlpha Kind = "alpha"
	// KindBeta is the encoded r-passive solution A^β(k) (Figure 3).
	KindBeta Kind = "beta"
	// KindGamma is the active solution A^γ(k) (Figure 4).
	KindGamma Kind = "gamma"
)

// Solution bundles a protocol pair with its parameters: the composition
// At ∘ Ar the paper calls A^α, A^β(k) or A^γ(k).
type Solution struct {
	// Kind identifies the protocol family.
	Kind Kind
	// Params are the timing constants.
	Params Params
	// K is the transmitter's packet-alphabet size (2 for A^α, whose
	// alphabet is M itself).
	K int
	// Passive reports whether the receiver sends no packets.
	Passive bool
	// BlockBits is the number of input bits per transmission unit: 1 for
	// A^α, ⌊log2 μ_k(δ)⌋ for the burst protocols. Inputs to Run must be a
	// multiple of BlockBits long.
	BlockBits int

	newPair func(x []wire.Bit) (t, r ioa.Automaton, err error)
}

// Alpha returns the A^α solution.
func Alpha(p Params) (Solution, error) {
	if err := p.Validate(); err != nil {
		return Solution{}, err
	}
	return Solution{
		Kind:      KindAlpha,
		Params:    p,
		K:         2,
		Passive:   true,
		BlockBits: 1,
		newPair: func(x []wire.Bit) (ioa.Automaton, ioa.Automaton, error) {
			t, err := NewAlphaTransmitter(p, x)
			if err != nil {
				return nil, nil, err
			}
			r, err := NewAlphaReceiver(p)
			if err != nil {
				return nil, nil, err
			}
			return t, r, nil
		},
	}, nil
}

// Beta returns the A^β(k) solution.
func Beta(p Params, k int) (Solution, error) {
	if _, err := betaCodec(p, k); err != nil {
		return Solution{}, err
	}
	return Solution{
		Kind:      KindBeta,
		Params:    p,
		K:         k,
		Passive:   true,
		BlockBits: BetaBlockBits(p, k),
		newPair: func(x []wire.Bit) (ioa.Automaton, ioa.Automaton, error) {
			t, err := NewBetaTransmitter(p, k, x)
			if err != nil {
				return nil, nil, err
			}
			r, err := NewBetaReceiver(p, k)
			if err != nil {
				return nil, nil, err
			}
			return t, r, nil
		},
	}, nil
}

// Gamma returns the A^γ(k) solution.
func Gamma(p Params, k int) (Solution, error) {
	if _, err := gammaCodec(p, k); err != nil {
		return Solution{}, err
	}
	return Solution{
		Kind:      KindGamma,
		Params:    p,
		K:         k,
		Passive:   false,
		BlockBits: GammaBlockBits(p, k),
		newPair: func(x []wire.Bit) (ioa.Automaton, ioa.Automaton, error) {
			t, err := NewGammaTransmitter(p, k, x)
			if err != nil {
				return nil, nil, err
			}
			r, err := NewGammaReceiver(p, k)
			if err != nil {
				return nil, nil, err
			}
			return t, r, nil
		},
	}, nil
}

// String renders the solution name, e.g. "beta(k=4)".
func (s Solution) String() string {
	if s.Kind == KindAlpha {
		return string(s.Kind)
	}
	return fmt.Sprintf("%s(k=%d)", s.Kind, s.K)
}

// NewPair constructs fresh transmitter and receiver automata for input x.
func (s Solution) NewPair(x []wire.Bit) (t, r ioa.Automaton, err error) {
	return s.newPair(x)
}

// RunOptions select the schedules of one timed execution. Zero values get
// the worst-case defaults: both processes at the slowest legal schedule
// (every c2 ticks) and the channel at maximum delay — the execution whose
// effort matches the analytic bounds.
type RunOptions struct {
	// TPolicy schedules the transmitter's steps (default fixed(c2)).
	TPolicy sim.StepPolicy
	// RPolicy schedules the receiver's steps (default fixed(c2)).
	RPolicy sim.StepPolicy
	// Delay is the channel adversary (default max-delay(d)).
	Delay chanmodel.DelayPolicy
	// ProcFaults schedules process crashes, restarts and state corruption
	// (default none). Runs with a schedule carry a Stabilization report.
	ProcFaults sim.ProcSchedule
	// MaxTicks and MaxEvents cap the run (0 = simulator defaults).
	MaxTicks  int64
	MaxEvents int
}

func (o RunOptions) withDefaults(p Params) RunOptions {
	if o.TPolicy == nil {
		o.TPolicy = sim.FixedGap{C: p.C2}
	}
	if o.RPolicy == nil {
		o.RPolicy = sim.FixedGap{C: p.C2}
	}
	if o.Delay == nil {
		o.Delay = chanmodel.MaxDelay{D: p.D}
	}
	return o
}

// Run executes the solution on input x until all |x| messages are written,
// returning the timed run. The input length must be a multiple of
// BlockBits (see PadToBlock).
func (s Solution) Run(x []wire.Bit, opt RunOptions) (*sim.Run, error) {
	opt = opt.withDefaults(s.Params)
	t, r, err := s.NewPair(x)
	if err != nil {
		return nil, err
	}
	run, err := sim.Simulate(sim.Config{
		C1:          s.Params.C1,
		C2:          s.Params.C2,
		D:           s.Params.D,
		Transmitter: sim.Process{Auto: t, Policy: opt.TPolicy},
		Receiver:    sim.Process{Auto: r, Policy: opt.RPolicy},
		Delay:       opt.Delay,
		ProcFaults:  opt.ProcFaults,
		Stop:        sim.StopAfterWrites(len(x)),
		MaxTicks:    opt.MaxTicks,
		MaxEvents:   opt.MaxEvents,
	})
	if run != nil {
		run.MeasureStabilization(x)
	}
	if err != nil {
		return run, fmt.Errorf("rstp: %s run: %w", s, err)
	}
	return run, nil
}

// Verify checks good(A) and the RSTP correctness condition Y = X over a
// completed run.
func (s Solution) Verify(run *sim.Run, x []wire.Bit) []timed.Violation {
	return timed.Good(run.Trace, timed.GoodConfig{
		C1:              s.Params.C1,
		C2:              s.Params.C2,
		D:               s.Params.D,
		Transmitter:     TransmitterName,
		Receiver:        ReceiverName,
		X:               x,
		RequireComplete: true,
	})
}

// Effort is one measured effort data point.
type Effort struct {
	// N is the input length in messages.
	N int
	// LastSend is t(last-send) of the run.
	LastSend int64
	// PerMessage is LastSend / N — the effort estimate.
	PerMessage float64
	// Schedule and Delay label the adversaries used.
	Schedule, Delay string
}

// MeasureEffort runs the solution on x and reports t(last-send)/|x|,
// verifying the run is good and complete first.
func (s Solution) MeasureEffort(x []wire.Bit, opt RunOptions) (Effort, error) {
	opt = opt.withDefaults(s.Params)
	run, err := s.Run(x, opt)
	if err != nil {
		return Effort{}, err
	}
	if v := s.Verify(run, x); len(v) > 0 {
		return Effort{}, fmt.Errorf("rstp: %s run not good: %v (and %d more)", s, v[0], len(v)-1)
	}
	last, ok := run.LastSendTime()
	if !ok {
		return Effort{}, fmt.Errorf("rstp: %s run sent nothing", s)
	}
	return Effort{
		N:          len(x),
		LastSend:   last,
		PerMessage: float64(last) / float64(len(x)),
		Schedule:   opt.TPolicy.Name(),
		Delay:      opt.Delay.Name(),
	}, nil
}
