package rstp

import (
	"encoding/binary"
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/ioa"
	"repro/internal/sim"
	"repro/internal/timed"
	"repro/internal/wire"
)

// The stabilizing layer: a recovery shim that lets a protocol stack
// survive the *processes* failing, the way the hardened layer (hardened.go)
// lets it survive the *channel* failing. The fault model is the
// self-stabilization one (Dolev, Dubois, Potop-Butucaru & Tixeuil,
// PAPERS.md): a process may crash and lose its volatile state, restart
// from a persisted checkpoint that may itself be missing or corrupted, or
// suffer a transient fault that mutates live state — and after the last
// fault heals, the system must converge back to "Y is a prefix of X and
// grows" within a bounded time.
//
// Mechanism. Each endpoint is wrapped in a stableEnd that owns a session
// *epoch* and checkpoints minimal protocol state through a pluggable
// StateStore — the transmitter its (epoch, input cursor), the receiver
// its epoch; the receiver's output length needs no checkpoint because the
// output tape itself is durable (write(m) is an irrevocable external
// action). Every payload packet is tagged with the epoch; packets from a
// dead session are discarded, which is what makes rebuilding the inner
// automata safe. Checkpoints carry an FNV-64 checksum, so a checkpoint
// damaged while the process was down is detected on reload rather than
// trusted.
//
// Recovery is a three-message resynchronization handshake:
//
//	RESYNC  (t→r)  "I restarted and know nothing; report."
//	REPORT  (r→t)  "my output tape holds w messages; my epoch is e."
//	REWIND  (t→r)  "new epoch e' > e; I rewound to cursor b ≤ w."
//	READY   (r→t)  "epoch e' adopted; send."
//
// A restarted transmitter probes with RESYNC; a restarted receiver (or
// one that detects a wedged session via a run of epoch-mismatched
// payloads — the live-corruption symptom) volunteers REPORT. The
// transmitter rewinds to the last block boundary at or below w, rebuilds
// its inner stack on the input suffix, and the receiver suppresses the
// re-sent bits it already wrote, so Y never repeats or skips a message.
// Every handshake message is retransmitted on a step-clock timeout and
// carries a checksum; epochs only grow, so stale handshake traffic from
// an older session is ignored by construction.
//
// Guarantee split, mirroring the hardened layer: safety — Y a prefix of X
// at every point — holds under ANY crash/corruption schedule, because the
// inner automata only ever see packets of the live epoch and the receiver
// suppresses rewound duplicates. Convergence — Y = X with a finite
// Stabilization time — additionally needs the faults to stop (every
// crash restarted, no further corruption) and, if the channel is faulty
// too, the inner stack to be hardened (compose: Stabilize ∘ Harden).

// StateStore persists a wrapper's checkpoint across process crashes. A
// store may lose or corrupt data (that is the point — the layer detects
// it). Implementations must be safe for concurrent use: the simulator is
// single-threaded, but the serving layer (internal/session) shares one
// store across every session goroutine, and internal/journal shares one
// durable journal across a whole process.
type StateStore interface {
	// Save durably records data under key, replacing any previous value.
	Save(key string, data []byte)
	// Load returns the bytes last saved under key.
	Load(key string) (data []byte, ok bool)
}

// MemStore is the canonical StateStore: an in-memory map, which in the
// simulation plays the role of the stable storage that survives a process
// crash (the simulated "disk"). For stable storage that survives a real
// process crash, see internal/journal.
type MemStore struct {
	mu sync.Mutex
	m  map[string][]byte
}

// NewMemStore returns an empty store.
func NewMemStore() *MemStore { return &MemStore{m: make(map[string][]byte)} }

// Save implements StateStore.
func (s *MemStore) Save(key string, data []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.m[key] = append([]byte(nil), data...)
}

// Load implements StateStore.
func (s *MemStore) Load(key string) ([]byte, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	d, ok := s.m[key]
	return append([]byte(nil), d...), ok
}

// Checkpoint codec: n big-endian int64 fields followed by an FNV-64
// checksum of those bytes. Any bit flip in a stored checkpoint changes
// the hash, so a damaged checkpoint reads as "missing" rather than as a
// plausible lie.

func fnv64(data []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

func encodeCkpt(vals ...int64) []byte {
	out := make([]byte, 8*len(vals)+8)
	for i, v := range vals {
		binary.BigEndian.PutUint64(out[8*i:], uint64(v))
	}
	binary.BigEndian.PutUint64(out[8*len(vals):], fnv64(out[:8*len(vals)]))
	return out
}

func decodeCkpt(data []byte, n int) ([]int64, bool) {
	if len(data) != 8*n+8 {
		return nil, false
	}
	if binary.BigEndian.Uint64(data[8*n:]) != fnv64(data[:8*n]) {
		return nil, false
	}
	vals := make([]int64, n)
	for i := range vals {
		vals[i] = int64(binary.BigEndian.Uint64(data[8*i:]))
	}
	return vals, true
}

// Tag layout on a stabilized channel. Payload packets (bit 0 clear) carry
// the session epoch mod 2^12 in bits 1-12 and the inner layer's tag
// shifted above; control packets (bit 0 set) carry a handshake kind in
// bits 1-2, a 4-bit checksum in bits 3-6, a 24-bit count (output length /
// cursor) in bits 7-30 and the full epoch above.
const (
	stCtrlBit    = 1
	stKindShift  = 1
	stKindMask   = 0x3
	stCkShift    = 3
	stCkMask     = 0xF
	stCountShift = 7
	stCountMask  = (1 << 24) - 1
	stEpochShift = 31

	stPayloadEpochShift = 1
	stPayloadEpochMask  = 0xFFF
	stPayloadTagShift   = 13
)

// Handshake message kinds.
const (
	stResync = 0
	stReport = 1
	stRewind = 2
	stReady  = 3
)

// stIdleRTOs is the receiver's quiet trigger, in retransmission timeouts:
// a live session that delivers no payload for this long makes the
// receiver volunteer a REPORT. This is the probe that recovers from a
// wedge the mismatch counter cannot see — a transmitter whose corrupted
// epoch made it finish its stream into the void, leaving no further
// traffic to count. The probe is idempotent (a resync of a healthy
// session rewinds to the current frontier and re-establishes it), so
// firing it spuriously during a long channel outage costs one handshake
// round and never correctness.
const stIdleRTOs = 4

func stKindName(kind int) string {
	switch kind {
	case stResync:
		return "RESYNC"
	case stReport:
		return "REPORT"
	case stRewind:
		return "REWIND"
	case stReady:
		return "READY"
	default:
		return fmt.Sprintf("ctrl(%d)", kind)
	}
}

// stChecksum hashes a control header into 4 bits.
func stChecksum(kind int, epoch, count int64, dir wire.Dir) int {
	h := int64(kind)*131 + epoch*1000003 + count*31 + int64(dir)*7
	return int(((h % 16) + 16) % 16)
}

// stWrapPayload seals an inner packet with the session epoch.
func stWrapPayload(epoch int64, inner wire.Packet) wire.Packet {
	return wire.Packet{
		Kind:   inner.Kind,
		Symbol: inner.Symbol,
		Tag:    inner.Tag<<stPayloadTagShift | int(epoch&stPayloadEpochMask)<<stPayloadEpochShift,
	}
}

// stCtrlPacket builds a handshake packet.
func stCtrlPacket(kind int, epoch, count int64, dir wire.Dir) wire.Packet {
	ck := stChecksum(kind, epoch, count, dir)
	return wire.Packet{
		Kind: wire.Ack,
		Tag: int(epoch)<<stEpochShift | int(count&stCountMask)<<stCountShift |
			ck<<stCkShift | kind<<stKindShift | stCtrlBit,
	}
}

// stDecode splits a received packet. For controls ok reports the checksum
// verdict; for payloads it is always true (the inner layer judges its own
// integrity) and epoch is the 12-bit session tag.
func stDecode(p wire.Packet, dir wire.Dir) (ctrl bool, kind int, epoch, count int64, inner wire.Packet, ok bool) {
	if p.Tag&stCtrlBit != 0 {
		kind = (p.Tag >> stKindShift) & stKindMask
		ck := (p.Tag >> stCkShift) & stCkMask
		count = int64(p.Tag>>stCountShift) & stCountMask
		epoch = int64(p.Tag) >> stEpochShift
		ok = epoch >= 0 && stChecksum(kind, epoch, count, dir) == ck
		return true, kind, epoch, count, wire.Packet{}, ok
	}
	epoch = int64(p.Tag>>stPayloadEpochShift) & stPayloadEpochMask
	inner = p
	inner.Tag = p.Tag >> stPayloadTagShift
	return false, 0, epoch, 0, inner, true
}

// StabilizeOptions tune the stabilizing layer. Zero values get defaults
// derived from the solution's Params.
type StabilizeOptions struct {
	// Store persists checkpoints across crashes. Default: a fresh MemStore
	// shared by the two endpoints of each NewPair.
	Store StateStore
	// RTOSteps is the handshake retransmission timeout in local steps.
	// Default ⌈(δ1·c2 + d)/c1⌉ + 2, the hardened layer's round-trip bound.
	RTOSteps int64
	// MismatchLimit is the run of consecutive epoch-mismatched payloads
	// after which the receiver assumes a wedged session (the live-epoch-
	// corruption symptom) and volunteers a REPORT. Default 64 — larger
	// than any in-flight backlog a healing handshake leaves behind, so a
	// working session never trips it.
	MismatchLimit int
	// Observer receives the layer's protocol events (epoch rewinds,
	// rewind adoptions, control rejects, dead-epoch drops). Shared across
	// every endpoint built from these options, so implementations must be
	// concurrency-safe. nil disables the hooks.
	Observer LayerObserver
	// KeyPrefix namespaces the checkpoint keys ("t"/"r") inside Store, so
	// many sessions can share one durable store — the serving layer
	// prefixes each session's keys with "s<ID>/". Empty keeps the bare
	// keys, the simulator's single-session layout.
	KeyPrefix string
	// Recover makes NewPair build endpoints that restart from the store
	// instead of assuming a fresh session: each endpoint reloads its
	// checkpoint (missing or corrupt reads as "know nothing") and enters
	// the RESYNC/REPORT handshake, exactly as after a sim crash. This is
	// the real-process restart path: a server reopening a journal store
	// resumes its sessions where the checkpoints left them, paying one
	// handshake round even when the store is empty.
	Recover bool
}

func (o StabilizeOptions) withDefaults(p Params) StabilizeOptions {
	if o.RTOSteps <= 0 {
		d1 := int64(p.Delta1())
		rtt := d1*p.C2 + p.D
		o.RTOSteps = (rtt+p.C1-1)/p.C1 + 2
	}
	if o.MismatchLimit <= 0 {
		o.MismatchLimit = 64
	}
	return o
}

// pairBuilder is the protocol stack Stabilize wraps: both Solution and
// HardenedSolution satisfy it, which is what makes the two layers
// composable in either thickness (stabilized bare, or stabilized+hardened).
type pairBuilder interface {
	NewPair(x []wire.Bit) (t, r ioa.Automaton, err error)
	String() string
}

const (
	roleT = 0
	roleR = 1
)

// stableEnd wraps one endpoint with the stabilizing layer. It implements
// sim.Restartable (real crash semantics: volatile state wiped, checkpoint
// reloaded) and sim.StateCorruptible (transient faults flip a checkpoint
// bit or bump the live epoch).
type stableEnd struct {
	role          int
	name          string
	outDir, inDir wire.Dir
	store         StateStore
	key           string
	rto           int64
	mismatchLimit int
	blockBits     int64
	x             []wire.Bit // transmitter input (nil on the receiver)
	build         func(x []wire.Bit) (ioa.Automaton, error)

	// Volatile state, wiped by Crash and rebuilt by Restart.
	inner    ioa.Automaton // nil while resynchronizing
	epoch    int64
	base     int64 // t: input cursor at epoch start; r: cursor from REWIND
	synced   bool  // t: READY received for the current epoch
	announce bool  // r: REPORT until a REWIND adopts a new epoch
	pending  bool  // r: a READY reply is owed
	steps    int64 // local step counter — the layer's clock
	lastCtrl int64 // steps at the last paced control send
	lastLive int64 // r: steps at the last accepted live-epoch payload
	suppress int64 // r: rewound duplicate writes left to swallow

	// Durable by nature: the receiver's output tape length. write(m) is an
	// external action on a durable device, so a crash cannot unwrite it.
	writes int64

	// Diagnostics.
	rejected   int // control checksum failures dropped
	staleDrops int // payloads from a dead epoch discarded
	mismatches int // consecutive mismatches (r side trigger counter)

	obs LayerObserver // nil disables the event hooks
}

var (
	_ ioa.Automaton        = (*stableEnd)(nil)
	_ sim.Restartable      = (*stableEnd)(nil)
	_ sim.StateCorruptible = (*stableEnd)(nil)
)

// persist checkpoints the endpoint's minimal state.
func (e *stableEnd) persist() {
	if e.role == roleT {
		e.store.Save(e.key, encodeCkpt(e.epoch, e.base))
	} else {
		e.store.Save(e.key, encodeCkpt(e.epoch))
	}
}

// load reloads the checkpoint; ok is false when it is missing or fails
// its checksum, in which case the endpoint knows nothing and must rely on
// the handshake entirely.
func (e *stableEnd) load() bool {
	data, found := e.store.Load(e.key)
	if !found {
		return false
	}
	n := 1
	if e.role == roleT {
		n = 2
	}
	vals, ok := decodeCkpt(data, n)
	if !ok {
		return false
	}
	e.epoch = vals[0]
	if e.role == roleT {
		e.base = vals[1]
	}
	return true
}

// Crash implements sim.Restartable: the process halts and its volatile
// state is gone. The output-tape length survives on the receiver — it is
// a property of the durable tape, not of the process.
func (e *stableEnd) Crash(int64) {
	e.inner = nil
	e.synced = false
	e.announce = false
	e.pending = false
	e.suppress = 0
	e.mismatches = 0
}

// Restart implements sim.Restartable: reload the checkpoint (zero
// knowledge if missing/corrupt) and enter the handshake — the transmitter
// probes with RESYNC, the receiver volunteers REPORT.
func (e *stableEnd) Restart(int64) {
	e.epoch = 0
	e.base = 0
	e.steps = 0
	e.lastCtrl = -e.rto
	e.lastLive = 0
	e.load() // best effort; a failed load leaves epoch 0 ("know nothing")
	e.inner = nil
	e.synced = false
	e.pending = false
	e.suppress = 0
	e.mismatches = 0
	e.announce = e.role == roleR
}

// ResumeTape informs a recovering receiver endpoint that the durable
// output tape already holds n messages. The paper makes the output tape
// itself stable storage — write(m) is irrevocable — so a restarted
// process that reloads its tape must also restore the wrapper's view of
// its length before the first REPORT, or the handshake would rewind the
// transmitter to zero and duplicate every message already written. Call
// it after construction (with Recover set) and before the first step;
// it is a no-op on transmitter endpoints.
func (e *stableEnd) ResumeTape(n int64) {
	if e.role == roleR && n > e.writes {
		e.writes = n
	}
}

// CorruptState implements sim.StateCorruptible: a transient fault flips
// one bit of the persisted checkpoint (detected by checksum on the next
// reload) or bumps the live epoch (detected by the peer's mismatch run).
func (e *stableEnd) CorruptState(r *rand.Rand) string {
	if data, ok := e.store.Load(e.key); ok && len(data) > 0 && r.Intn(2) == 0 {
		bit := r.Intn(len(data) * 8)
		data[bit/8] ^= 1 << (bit % 8)
		e.store.Save(e.key, data)
		return fmt.Sprintf("checkpoint %q bit %d flipped", e.key, bit)
	}
	delta := int64(1 + r.Intn(7))
	e.epoch += delta
	return fmt.Sprintf("live epoch +%d", delta)
}

// Name keeps the inner actor name ("t"/"r") even while the inner stack is
// torn down, so traces and validators see the usual actors.
func (e *stableEnd) Name() string { return e.name }

// Classify places layer traffic first, then defers to the inner stack.
// As with the hardened layer, every Recv on inDir is an input regardless
// of content — the layer, not the signature, discards dead-epoch traffic.
func (e *stableEnd) Classify(act ioa.Action) ioa.Class {
	switch a := act.(type) {
	case wire.Recv:
		if a.Dir == e.inDir {
			return ioa.ClassInput
		}
	case wire.Send:
		if a.Dir == e.outDir {
			return ioa.ClassOutput
		}
	case wire.Internal:
		if a.Name == "idle_s" || a.Name == "skip_w" {
			return ioa.ClassInternal
		}
	}
	if e.inner == nil {
		return ioa.ClassNone
	}
	return e.inner.Classify(act)
}

// due reports whether the paced control retransmission timer fired.
func (e *stableEnd) due() bool { return e.steps-e.lastCtrl >= e.rto }

// idle reports the receiver's quiet trigger: a live session with no
// accepted payload for stIdleRTOs timeouts.
func (e *stableEnd) idle() bool { return e.steps-e.lastLive >= stIdleRTOs*e.rto }

// forceDue arms the control timer to fire at the next local step.
func (e *stableEnd) forceDue() { e.lastCtrl = e.steps - e.rto }

// ForceResync asks the endpoint to re-establish its session now instead
// of waiting for a trigger of its own (mismatch run, quiet clock,
// restart). The receiver volunteers a REPORT; the transmitter drops back
// to unsynced and re-announces its REWIND. It is the hook an external
// watchdog pulls when it believes a session is wedged for reasons the
// layer cannot observe — e.g. a transport partition outlasting every
// in-band timer. Forcing a resync on a healthy session costs one
// idempotent handshake round and never safety.
func (e *stableEnd) ForceResync() {
	if e.role == roleR {
		e.announce = true
		e.mismatches = 0
	} else if e.inner != nil {
		e.synced = false
	}
	e.forceDue()
}

// NextLocal picks the layer's next action. While the session is being
// re-established the handshake owns the step clock (paced control sends
// with internal idle steps between them); in a live session the inner
// stack's actions flow through, sends wrapped with the epoch and rewound
// duplicate writes swallowed as internal steps.
func (e *stableEnd) NextLocal() (ioa.Action, bool) {
	if e.role == roleT {
		if e.inner == nil { // awaiting REPORT
			if e.due() {
				return wire.Send{Dir: e.outDir, P: stCtrlPacket(stResync, e.epoch, 0, e.outDir)}, true
			}
			return wire.Internal{Name: "idle_s"}, true
		}
		if !e.synced { // awaiting READY
			if e.due() {
				return wire.Send{Dir: e.outDir, P: stCtrlPacket(stRewind, e.epoch, e.base, e.outDir)}, true
			}
			return wire.Internal{Name: "idle_s"}, true
		}
	} else {
		if e.pending {
			return wire.Send{Dir: e.outDir, P: stCtrlPacket(stReady, e.epoch, 0, e.outDir)}, true
		}
		if e.inner == nil || e.announce || e.idle() { // awaiting REWIND, or probing a quiet session
			if e.due() {
				return wire.Send{Dir: e.outDir, P: stCtrlPacket(stReport, e.epoch, e.writes, e.outDir)}, true
			}
			return wire.Internal{Name: "idle_s"}, true
		}
	}
	act, ok := e.inner.NextLocal()
	if !ok {
		return nil, false
	}
	if s, isSend := act.(wire.Send); isSend && s.Dir == e.outDir {
		return wire.Send{Dir: e.outDir, P: stWrapPayload(e.epoch, s.P)}, true
	}
	if _, isWrite := act.(wire.Write); isWrite && e.suppress > 0 {
		return wire.Internal{Name: "skip_w"}, true
	}
	return act, true
}

// Apply performs one transition: inputs through the receive path, layer
// sends through the send path, suppressed writes committed silently to
// the inner stack, everything else forwarded verbatim.
func (e *stableEnd) Apply(act ioa.Action) error {
	if recv, ok := act.(wire.Recv); ok && recv.Dir == e.inDir {
		return e.onRecv(recv.P)
	}
	switch a := act.(type) {
	case wire.Internal:
		switch a.Name {
		case "idle_s":
			e.steps++
			return nil
		case "skip_w":
			// Commit the rewound duplicate write to the inner stack without
			// letting it reach the durable tape. NextLocal is pure, so
			// re-asking yields the write we are swallowing.
			inner, ok := e.inner.NextLocal()
			if !ok {
				return fmt.Errorf("rstp: stabilized %s: suppressed write vanished: %w", e.name, ioa.ErrNotEnabled)
			}
			if _, isWrite := inner.(wire.Write); !isWrite {
				return fmt.Errorf("rstp: stabilized %s: suppressed %v is not a write: %w", e.name, inner, ioa.ErrNotEnabled)
			}
			if err := e.inner.Apply(inner); err != nil {
				return err
			}
			e.suppress--
			e.steps++
			return nil
		}
	case wire.Send:
		if a.Dir == e.outDir {
			return e.onLocalSend(a)
		}
	case wire.Write:
		if e.inner == nil {
			return fmt.Errorf("rstp: stabilized %s: write with no session: %w", e.name, ioa.ErrNotEnabled)
		}
		e.steps++
		if err := e.inner.Apply(a); err != nil {
			return err
		}
		e.writes++ // the durable tape grew
		return nil
	}
	if e.inner == nil {
		return fmt.Errorf("rstp: stabilized %s: %v with no session: %w", e.name, act, ioa.ErrNotEnabled)
	}
	e.steps++
	return e.inner.Apply(act)
}

// onLocalSend commits one of the layer's own send actions.
func (e *stableEnd) onLocalSend(s wire.Send) error {
	e.steps++
	ctrl, kind, _, _, _, ok := stDecode(s.P, e.outDir)
	if !ok {
		return fmt.Errorf("rstp: stabilized %s: malformed local send %v: %w", e.name, s, ioa.ErrNotEnabled)
	}
	if ctrl {
		e.lastCtrl = e.steps
		if kind == stReady {
			e.pending = false
		}
		return nil
	}
	// Payload: the inner stack's pending send becomes real now.
	if e.inner == nil {
		return fmt.Errorf("rstp: stabilized %s: payload send with no session: %w", e.name, ioa.ErrNotEnabled)
	}
	inner, ok2 := e.inner.NextLocal()
	if !ok2 {
		return fmt.Errorf("rstp: stabilized %s: inner send vanished: %w", e.name, ioa.ErrNotEnabled)
	}
	return e.inner.Apply(inner)
}

// resync performs the transmitter's half of the handshake: adopt a fresh
// epoch above everything either side has seen, rewind the input cursor to
// the last block boundary at or below the receiver's reported output
// length, rebuild the inner stack on the suffix, checkpoint, and start
// announcing the REWIND.
func (e *stableEnd) resync(reportedEpoch, reportedWrites int64) error {
	next := e.epoch
	if reportedEpoch > next {
		next = reportedEpoch
	}
	e.epoch = next + 1
	e.base = reportedWrites - reportedWrites%e.blockBits
	if e.base < 0 {
		e.base = 0
	}
	if e.base > int64(len(e.x)) {
		e.base = int64(len(e.x)) - int64(len(e.x))%e.blockBits
	}
	inner, err := e.build(e.x[e.base:])
	if err != nil {
		return fmt.Errorf("rstp: stabilized %s: rebuild at cursor %d: %w", e.name, e.base, err)
	}
	e.inner = inner
	e.synced = false
	e.persist()
	e.forceDue() // announce the REWIND immediately
	emit(e.obs, LayerResync)
	return nil
}

// onRecv is the layer's receive path: handshake controls update the
// session, payloads of the live epoch flow to the inner stack, and
// everything else is discarded (counting toward the receiver's wedged-
// session trigger).
func (e *stableEnd) onRecv(p wire.Packet) error {
	ctrl, kind, epoch, count, inner, ok := stDecode(p, e.inDir)
	if ctrl {
		if !ok {
			e.rejected++
			emit(e.obs, LayerCtrlReject)
			return nil
		}
		switch {
		case kind == stResync && e.role == roleR:
			// The transmitter restarted and knows nothing: volunteer a
			// REPORT. The inner stack (if any) is kept until the REWIND
			// actually moves the session.
			e.announce = true
			e.forceDue()
		case kind == stReport && e.role == roleT:
			// Any valid REPORT re-synchronizes: a restarted or wedged
			// receiver is asking for a session it can join. Duplicates
			// cost one extra (idempotent) handshake round, never safety.
			return e.resync(epoch, count)
		case kind == stRewind && e.role == roleR:
			switch {
			case epoch > e.epoch:
				// Adopt the new session: everything already on the tape
				// above the rewound cursor will be re-sent and must be
				// swallowed, never re-written.
				e.epoch = epoch
				e.suppress = e.writes - count
				if e.suppress < 0 {
					e.suppress = 0
				}
				fresh, err := e.build(nil)
				if err != nil {
					return fmt.Errorf("rstp: stabilized %s: rebuild receiver: %w", e.name, err)
				}
				e.inner = fresh
				e.announce = false
				e.mismatches = 0
				e.pending = true
				e.lastLive = e.steps // fresh session: restart the quiet clock
				e.persist()
				emit(e.obs, LayerRewindAdopt)
			case epoch == e.epoch:
				e.pending = true // duplicate REWIND: re-ack
				e.lastLive = e.steps
			}
		case kind == stReady && e.role == roleT:
			if epoch == e.epoch && e.inner != nil {
				e.synced = true
			}
		}
		return nil
	}
	// Payload.
	if e.inner == nil || (e.role == roleR && e.announce) || (e.role == roleT && !e.synced) {
		e.staleDrops++
		emit(e.obs, LayerEpochDrop)
		return nil
	}
	if epoch != e.epoch&stPayloadEpochMask {
		e.staleDrops++
		emit(e.obs, LayerEpochDrop)
		if e.role == roleR {
			e.mismatches++
			if e.mismatches >= e.mismatchLimit {
				// A long run of dead-epoch payloads means the session is
				// wedged (live epoch corruption on either side): ask for
				// a resynchronization.
				e.announce = true
				e.mismatches = 0
				e.forceDue()
			}
		}
		return nil
	}
	e.mismatches = 0
	e.lastLive = e.steps
	return e.inner.Apply(wire.Recv{Dir: e.inDir, P: inner})
}

// StabilizedSolution is a protocol stack wrapped in the stabilizing layer
// at both endpoints. Build one with Stabilize (over a bare Solution) or
// StabilizeHardened (over a hardened stack, the full-chaos configuration).
type StabilizedSolution struct {
	// Params are the inner solution's timing constants.
	Params Params
	// BlockBits is the inner solution's input block size; resynchron-
	// ization rewinds the cursor to block boundaries.
	BlockBits int
	// Opts are the layer's tuning knobs (zero values take defaults).
	Opts StabilizeOptions

	inner pairBuilder
}

// Stabilize wraps a bare solution in the stabilizing layer. On a channel
// that honours the model this survives any healing crash/corruption
// schedule; if the channel misbehaves too, stack the layers with
// StabilizeHardened.
func Stabilize(s Solution, opts StabilizeOptions) StabilizedSolution {
	return StabilizedSolution{
		Params:    s.Params,
		BlockBits: s.BlockBits,
		Opts:      opts.withDefaults(s.Params),
		inner:     s,
	}
}

// StabilizeHardened stacks both robustness layers: the hardened layer
// restores the channel's promises, the stabilizing layer restores the
// processes' — the configuration for surviving the full chaos matrix.
func StabilizeHardened(hs HardenedSolution, opts StabilizeOptions) StabilizedSolution {
	return StabilizedSolution{
		Params:    hs.Inner.Params,
		BlockBits: hs.Inner.BlockBits,
		Opts:      opts.withDefaults(hs.Inner.Params),
		inner:     hs,
	}
}

// String renders e.g. "stabilized(hardened(beta(k=4)))".
func (ss StabilizedSolution) String() string { return "stabilized(" + ss.inner.String() + ")" }

// NewPairKeyed constructs a pair whose persisted state lives under
// prefix inside the shared store: the checkpoint keys become
// prefix+"t" and prefix+"r". This is the serving layer's entry point —
// one journal store, many sessions, each namespaced by its session ID —
// and it satisfies session.KeyedPairBuilder.
func (ss StabilizedSolution) NewPairKeyed(prefix string, x []wire.Bit) (t, r ioa.Automaton, err error) {
	ss.Opts.KeyPrefix = prefix
	return ss.NewPair(x)
}

// NewPair constructs the wrapped transmitter and receiver for input x.
// The two endpoints share one StateStore (Opts.Store, or a fresh MemStore)
// under the keys "t" and "r" (prefixed by Opts.KeyPrefix); construction
// writes the initial checkpoints — or, with Opts.Recover set, reloads
// whatever checkpoints the store holds and starts both endpoints in the
// resynchronization handshake instead.
func (ss StabilizedSolution) NewPair(x []wire.Bit) (t, r ioa.Automaton, err error) {
	if ss.BlockBits > 0 && len(x)%ss.BlockBits != 0 {
		return nil, nil, fmt.Errorf("rstp: %s: input length %d not a multiple of block size %d", ss, len(x), ss.BlockBits)
	}
	store := ss.Opts.Store
	if store == nil {
		store = NewMemStore()
	}
	opts := ss.Opts.withDefaults(ss.Params)
	it, ir, err := ss.inner.NewPair(x)
	if err != nil {
		return nil, nil, err
	}
	blockBits := int64(ss.BlockBits)
	if blockBits < 1 {
		blockBits = 1
	}
	te := &stableEnd{
		role: roleT, name: it.Name(), outDir: wire.TtoR, inDir: wire.RtoT,
		store: store, key: opts.KeyPrefix + "t", rto: opts.RTOSteps, mismatchLimit: opts.MismatchLimit,
		blockBits: blockBits, x: x,
		build: func(suffix []wire.Bit) (ioa.Automaton, error) {
			nt, _, err := ss.inner.NewPair(suffix)
			return nt, err
		},
		inner: it, epoch: 1, synced: true, lastCtrl: -opts.RTOSteps,
		obs: opts.Observer,
	}
	re := &stableEnd{
		role: roleR, name: ir.Name(), outDir: wire.RtoT, inDir: wire.TtoR,
		store: store, key: opts.KeyPrefix + "r", rto: opts.RTOSteps, mismatchLimit: opts.MismatchLimit,
		blockBits: blockBits,
		build: func([]wire.Bit) (ioa.Automaton, error) {
			_, nr, err := ss.inner.NewPair(nil)
			return nr, err
		},
		inner: ir, epoch: 1, lastCtrl: -opts.RTOSteps,
		obs: opts.Observer,
	}
	if opts.Recover {
		// Restart semantics, not fresh-session semantics: reload whatever
		// the store holds (an empty store reads as "know nothing") and run
		// the handshake. The initial checkpoints are NOT written here —
		// that would overwrite the durable state being recovered.
		te.Restart(0)
		re.Restart(0)
	} else {
		te.persist()
		re.persist()
	}
	return te, re, nil
}

// Run executes the stabilized stack on input x until all |x| messages are
// written or the caps fire, measuring the Stabilization report when a
// process-fault plan was scheduled.
func (ss StabilizedSolution) Run(x []wire.Bit, opt RunOptions) (*sim.Run, error) {
	opt = opt.withDefaults(ss.Params)
	t, r, err := ss.NewPair(x)
	if err != nil {
		return nil, err
	}
	run, err := sim.Simulate(sim.Config{
		C1:          ss.Params.C1,
		C2:          ss.Params.C2,
		D:           ss.Params.D,
		Transmitter: sim.Process{Auto: t, Policy: opt.TPolicy},
		Receiver:    sim.Process{Auto: r, Policy: opt.RPolicy},
		Delay:       opt.Delay,
		ProcFaults:  opt.ProcFaults,
		Stop:        sim.StopAfterWrites(len(x)),
		MaxTicks:    opt.MaxTicks,
		MaxEvents:   opt.MaxEvents,
	})
	if run != nil {
		run.MeasureStabilization(x)
	}
	if err != nil {
		return run, fmt.Errorf("rstp: %s run: %w", ss, err)
	}
	return run, nil
}

// VerifySafety checks the fault-tolerant guarantee: Y is a prefix of X at
// every point of the trace, whatever the crash/corruption schedule did.
func (ss StabilizedSolution) VerifySafety(run *sim.Run, x []wire.Bit) []timed.Violation {
	return timed.PrefixInvariant(run.Trace, x, false)
}

// VerifyComplete checks safety plus the convergence outcome Y = X — the
// guarantee once every fault window has closed.
func (ss StabilizedSolution) VerifyComplete(run *sim.Run, x []wire.Bit) []timed.Violation {
	return timed.PrefixInvariant(run.Trace, x, true)
}

// Verify holds a fault-free stabilized run to the full good(A) + Y = X
// standard: on a healthy channel with immortal processes the layer is a
// pass-through and earns no slack.
func (ss StabilizedSolution) Verify(run *sim.Run, x []wire.Bit) []timed.Violation {
	return timed.Good(run.Trace, timed.GoodConfig{
		C1:              ss.Params.C1,
		C2:              ss.Params.C2,
		D:               ss.Params.D,
		Transmitter:     TransmitterName,
		Receiver:        ReceiverName,
		X:               x,
		RequireComplete: true,
	})
}
