package rstp

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/wire"
)

// A^α — the simple r-passive solution of Section 4, Figure 1.
//
// The transmitter sends one message per round and then idles long enough
// (⌈d/c1⌉ - 1 wait steps, i.e. consecutive sends at least ⌈d/c1⌉ steps and
// hence at least d ticks apart) that packets can never overtake each
// other. The receiver writes packets in arrival order.
//
// Its effort is exactly ⌈d/c1⌉·c2 = δ1·c2 = d·c2/c1 when c1 | d.

// AlphaTransmitter is A^α's transmitter automaton At^α.
type AlphaTransmitter struct {
	m *ioa.Machine

	x []wire.Bit
	i int // index of the next message to send (the paper's i)
	j int // steps taken in the current round (the paper's j)
	s int // steps per round: ⌈d/c1⌉
}

var _ ioa.Deterministic = (*AlphaTransmitter)(nil)

// NewAlphaTransmitter builds At^α for input sequence x.
func NewAlphaTransmitter(p Params, x []wire.Bit) (*AlphaTransmitter, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	for idx, b := range x {
		if !b.Valid() {
			return nil, fmt.Errorf("rstp: alpha transmitter: invalid bit at %d", idx)
		}
	}
	t := &AlphaTransmitter{
		x: append([]wire.Bit(nil), x...),
		s: p.CeilSteps1(),
	}
	if err := t.initMachine(); err != nil {
		return nil, err
	}
	return t, nil
}

// initMachine (re)binds the guarded commands to this instance; Fork calls
// it on copies.
func (t *AlphaTransmitter) initMachine() error {
	m, err := ioa.NewMachine(TransmitterName, t.classify, nil, []ioa.Command{
		{
			Name:  "send",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return t.j == 0 && t.i < len(t.x) },
			Act:   func() ioa.Action { return wire.Send{Dir: wire.TtoR, P: wire.DataPacket(wire.Symbol(t.x[t.i]))} },
			Eff:   func() { t.j = 1 },
		},
		{
			Name:  "wait_t",
			Class: ioa.ClassInternal,
			Pre:   func() bool { return t.j > 0 },
			Act:   func() ioa.Action { return wire.Internal{Name: "wait_t"} },
			Eff: func() {
				t.j++
				if t.j == t.s {
					t.i++
					t.j = 0
				}
			},
		},
	})
	if err != nil {
		return err
	}
	t.m = m
	return nil
}

// Fork returns an independent deep copy in the same state, for
// state-space exploration.
func (t *AlphaTransmitter) Fork() (*AlphaTransmitter, error) {
	c := &AlphaTransmitter{x: t.x, i: t.i, j: t.j, s: t.s}
	if err := c.initMachine(); err != nil {
		return nil, err
	}
	return c, nil
}

// Snapshot returns a canonical key of the mutable state.
func (t *AlphaTransmitter) Snapshot() string { return fmt.Sprintf("i=%d j=%d", t.i, t.j) }

func (t *AlphaTransmitter) classify(a ioa.Action) ioa.Class {
	switch act := a.(type) {
	case wire.Send:
		if act.Dir == wire.TtoR && act.P.Kind == wire.Data {
			return ioa.ClassOutput
		}
	case wire.Internal:
		if act.Name == "wait_t" {
			return ioa.ClassInternal
		}
	}
	return ioa.ClassNone
}

// Name returns "t".
func (t *AlphaTransmitter) Name() string { return t.m.Name() }

// Classify places an action in the signature.
func (t *AlphaTransmitter) Classify(a ioa.Action) ioa.Class { return t.m.Classify(a) }

// NextLocal returns the unique enabled local action.
func (t *AlphaTransmitter) NextLocal() (ioa.Action, bool) { return t.m.NextLocal() }

// Apply performs a transition.
func (t *AlphaTransmitter) Apply(a ioa.Action) error { return t.m.Apply(a) }

// DeterministicIOA marks the automaton deterministic.
func (t *AlphaTransmitter) DeterministicIOA() bool { return true }

// Done reports whether every message has been sent and the final round's
// wait has completed.
func (t *AlphaTransmitter) Done() bool { return t.i >= len(t.x) && t.j == 0 }

// AlphaReceiver is A^α's receiver automaton Ar^α: it stores received
// messages (the paper's unbounded array y) and writes them in order.
type AlphaReceiver struct {
	m *ioa.Machine

	y []wire.Bit // messages received, in arrival order
	k int        // number of messages written (paper's k, 0-based here)
}

var _ ioa.Deterministic = (*AlphaReceiver)(nil)

// NewAlphaReceiver builds Ar^α.
func NewAlphaReceiver(p Params) (*AlphaReceiver, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	r := &AlphaReceiver{}
	if err := r.initMachine(); err != nil {
		return nil, err
	}
	return r, nil
}

// initMachine (re)binds the guarded commands to this instance; Fork calls
// it on copies.
func (r *AlphaReceiver) initMachine() error {
	m, err := ioa.NewMachine(ReceiverName, r.classify, r.onInput, []ioa.Command{
		{
			Name:  "write",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return r.k < len(r.y) },
			Act:   func() ioa.Action { return wire.Write{M: r.y[r.k]} },
			Eff:   func() { r.k++ },
		},
		{
			Name:  "idle_r",
			Class: ioa.ClassInternal,
			Pre:   func() bool { return true },
			Act:   func() ioa.Action { return wire.Internal{Name: "idle_r"} },
			Eff:   func() {},
		},
	})
	if err != nil {
		return err
	}
	r.m = m
	return nil
}

// Fork returns an independent deep copy in the same state, for
// state-space exploration.
func (r *AlphaReceiver) Fork() (*AlphaReceiver, error) {
	c := &AlphaReceiver{y: append([]wire.Bit(nil), r.y...), k: r.k}
	if err := c.initMachine(); err != nil {
		return nil, err
	}
	return c, nil
}

// Snapshot returns a canonical key of the mutable state.
func (r *AlphaReceiver) Snapshot() string {
	return fmt.Sprintf("y=%s k=%d", wire.BitsToString(r.y), r.k)
}

// WrittenBits returns Y: the messages written so far, in order.
func (r *AlphaReceiver) WrittenBits() []wire.Bit {
	return append([]wire.Bit(nil), r.y[:r.k]...)
}

func (r *AlphaReceiver) classify(a ioa.Action) ioa.Class {
	switch act := a.(type) {
	case wire.Recv:
		if act.Dir == wire.TtoR && act.P.Kind == wire.Data {
			return ioa.ClassInput
		}
	case wire.Write:
		return ioa.ClassOutput
	case wire.Internal:
		if act.Name == "idle_r" {
			return ioa.ClassInternal
		}
	}
	return ioa.ClassNone
}

func (r *AlphaReceiver) onInput(a ioa.Action) error {
	recv, ok := a.(wire.Recv)
	if !ok {
		return fmt.Errorf("rstp: alpha receiver: unexpected input %v: %w", a, ioa.ErrNotInSignature)
	}
	// Input-enabled: store whatever arrives; a symbol outside M shows up
	// as an output-tape mismatch caught by the prefix validator.
	r.y = append(r.y, wire.Bit(recv.P.Symbol))
	return nil
}

// Name returns "r".
func (r *AlphaReceiver) Name() string { return r.m.Name() }

// Classify places an action in the signature.
func (r *AlphaReceiver) Classify(a ioa.Action) ioa.Class { return r.m.Classify(a) }

// NextLocal returns the unique enabled local action.
func (r *AlphaReceiver) NextLocal() (ioa.Action, bool) { return r.m.NextLocal() }

// Apply performs a transition.
func (r *AlphaReceiver) Apply(a ioa.Action) error { return r.m.Apply(a) }

// DeterministicIOA marks the automaton deterministic.
func (r *AlphaReceiver) DeterministicIOA() bool { return true }

// Written returns the number of messages written so far.
func (r *AlphaReceiver) Written() int { return r.k }
