package rstp

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/chanmodel"
	"repro/internal/ioa"
	"repro/internal/sim"
	"repro/internal/wire"
)

// stepLocal fires the automaton's enabled local action and returns it.
func stepLocal(t *testing.T, a ioa.Automaton) (ioa.Action, bool) {
	t.Helper()
	act, ok := a.NextLocal()
	if !ok {
		return nil, false
	}
	if err := a.Apply(act); err != nil {
		t.Fatalf("apply %v: %v", act, err)
	}
	return act, true
}

func TestAlphaTransmitterStepSequence(t *testing.T) {
	p := Params{C1: 2, C2: 3, D: 8} // ⌈d/c1⌉ = 4 steps per round
	x, _ := wire.ParseBits("10")
	tr, err := NewAlphaTransmitter(p, x)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []string
	for {
		act, ok := stepLocal(t, tr)
		if !ok {
			break
		}
		kinds = append(kinds, act.Kind())
		if len(kinds) > 100 {
			t.Fatal("runaway transmitter")
		}
	}
	// Per message: 1 send + 3 waits.
	want := []string{"send", "wait_t", "wait_t", "wait_t", "send", "wait_t", "wait_t", "wait_t"}
	if len(kinds) != len(want) {
		t.Fatalf("kinds = %v, want %v", kinds, want)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("step %d = %s, want %s", i, kinds[i], want[i])
		}
	}
	if !tr.Done() {
		t.Error("transmitter should be done")
	}
}

func TestAlphaTransmitterSendsBitsInOrder(t *testing.T) {
	p := Params{C1: 1, C2: 1, D: 2}
	x, _ := wire.ParseBits("1101")
	tr, err := NewAlphaTransmitter(p, x)
	if err != nil {
		t.Fatal(err)
	}
	var sent []wire.Bit
	for {
		act, ok := stepLocal(t, tr)
		if !ok {
			break
		}
		if s, isSend := act.(wire.Send); isSend {
			sent = append(sent, wire.Bit(s.P.Symbol))
		}
	}
	if wire.BitsToString(sent) != "1101" {
		t.Fatalf("sent %s", wire.BitsToString(sent))
	}
}

func TestAlphaTransmitterValidation(t *testing.T) {
	if _, err := NewAlphaTransmitter(Params{C1: 0, C2: 1, D: 2}, nil); err == nil {
		t.Error("bad params should fail")
	}
	if _, err := NewAlphaTransmitter(Params{C1: 1, C2: 1, D: 2}, []wire.Bit{5}); err == nil {
		t.Error("invalid bit should fail")
	}
}

func TestAlphaTransmitterIsRPassive(t *testing.T) {
	p := Params{C1: 1, C2: 1, D: 2}
	tr, err := NewAlphaTransmitter(p, []wire.Bit{1})
	if err != nil {
		t.Fatal(err)
	}
	// No inputs in the signature: recv classifies as none.
	if got := tr.Classify(wire.Recv{Dir: wire.RtoT, P: wire.AckPacket()}); got != ioa.ClassNone {
		t.Errorf("r-passive transmitter classifies ack recv as %v", got)
	}
	if !tr.DeterministicIOA() {
		t.Error("alpha transmitter must be deterministic")
	}
	if tr.Name() != TransmitterName {
		t.Errorf("name = %q", tr.Name())
	}
}

func TestAlphaReceiverWriteIdlePriority(t *testing.T) {
	p := Params{C1: 1, C2: 1, D: 2}
	rc, err := NewAlphaReceiver(p)
	if err != nil {
		t.Fatal(err)
	}
	// Empty: idles.
	act, ok := rc.NextLocal()
	if !ok || act.Kind() != "idle_r" {
		t.Fatalf("empty receiver NextLocal = %v", act)
	}
	// Input-enabled at any time.
	if err := rc.Apply(wire.Recv{Dir: wire.TtoR, P: wire.DataPacket(1)}); err != nil {
		t.Fatal(err)
	}
	act, ok = rc.NextLocal()
	if !ok || act.Kind() != wire.KindWrite {
		t.Fatalf("receiver with pending message NextLocal = %v", act)
	}
	if w := act.(wire.Write); w.M != wire.One {
		t.Fatalf("write %v, want 1", w.M)
	}
	if err := rc.Apply(act); err != nil {
		t.Fatal(err)
	}
	if rc.Written() != 1 {
		t.Fatalf("written = %d", rc.Written())
	}
	// Back to idling.
	act, _ = rc.NextLocal()
	if act.Kind() != "idle_r" {
		t.Fatalf("drained receiver NextLocal = %v", act)
	}
}

func TestAlphaReceiverRejectsForeignActions(t *testing.T) {
	rc, err := NewAlphaReceiver(Params{C1: 1, C2: 1, D: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := rc.Apply(wire.Send{Dir: wire.TtoR, P: wire.DataPacket(0)}); !errors.Is(err, ioa.ErrNotInSignature) {
		t.Errorf("send applied to receiver: %v", err)
	}
	// A write that is not the enabled one.
	if err := rc.Apply(wire.Write{M: 1}); !errors.Is(err, ioa.ErrNotEnabled) {
		t.Errorf("spurious write: %v", err)
	}
}

// TestAlphaReceiverBuffersAtMostTwo reproduces the paper's Section 4
// remark: "The assumption that c2 < d guarantees that A_r^α has to store
// only two messages" — the pending (received-but-unwritten) count never
// exceeds 2 in any good execution, across schedules and channels.
func TestAlphaReceiverBuffersAtMostTwo(t *testing.T) {
	for _, p := range []Params{
		{C1: 1, C2: 1, D: 2},
		{C1: 2, C2: 3, D: 8},
		{C1: 2, C2: 5, D: 11},
	} {
		s, err := Alpha(p)
		if err != nil {
			t.Fatal(err)
		}
		x := randomInput(t, s, 64, 12)
		rng := rand.New(rand.NewSource(13))
		for _, opt := range []RunOptions{
			{}, // slow + max delay
			{TPolicy: sim.FixedGap{C: p.C1}, RPolicy: sim.FixedGap{C: p.C2}, Delay: chanmodel.Zero{}},
			{
				TPolicy: sim.RandomGap{C1: p.C1, C2: p.C2, Int63n: rng.Int63n},
				RPolicy: sim.RandomGap{C1: p.C1, C2: p.C2, Int63n: rng.Int63n},
				Delay:   &chanmodel.UniformRandom{D: p.D, Rand: rng},
			},
		} {
			run, err := s.Run(x, opt)
			if err != nil {
				t.Fatal(err)
			}
			pending, maxPending := 0, 0
			for _, e := range run.Trace {
				switch e.Action.Kind() {
				case wire.KindRecv:
					pending++
				case wire.KindWrite:
					pending--
				}
				if pending > maxPending {
					maxPending = pending
				}
			}
			if maxPending > 2 {
				t.Errorf("%v: receiver buffered %d messages, paper says <= 2", p, maxPending)
			}
		}
	}
}

// TestAlphaRoundLengthGuaranteesSpacing: under the fastest schedule the
// inter-send time is still at least d.
func TestAlphaRoundLengthGuaranteesSpacing(t *testing.T) {
	for _, p := range []Params{
		{C1: 2, C2: 3, D: 8},
		{C1: 2, C2: 5, D: 11}, // non-divisible
		{C1: 3, C2: 4, D: 25},
	} {
		s := int64(p.CeilSteps1())
		if s*p.C1 < p.D {
			t.Errorf("%v: round of %d steps × c1 = %d < d", p, s, s*p.C1)
		}
	}
}
