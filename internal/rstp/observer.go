package rstp

import "repro/internal/obs"

// LayerEvent identifies one protocol-layer transition worth counting: the
// hardened layer's retransmission and integrity decisions, and the
// stabilizing layer's epoch machinery.
type LayerEvent int

const (
	// LayerRetransmit: the hardened layer re-sent an unacknowledged
	// payload (the commit point in onLocalSend, once per wire attempt).
	LayerRetransmit LayerEvent = iota
	// LayerChecksumReject: a received packet failed the hardened layer's
	// checksum and was dropped.
	LayerChecksumReject
	// LayerStaleDrop: a duplicate or out-of-date payload was discarded by
	// the hardened layer's exactly-once reassembly.
	LayerStaleDrop
	// LayerResync: the stabilizing transmitter adopted a fresh epoch and
	// rewound its input cursor (the resync commit point).
	LayerResync
	// LayerRewindAdopt: the stabilizing receiver adopted a REWIND's new
	// epoch and rebuilt its inner stack.
	LayerRewindAdopt
	// LayerCtrlReject: a stabilizing-layer control packet failed its
	// checksum and was dropped.
	LayerCtrlReject
	// LayerEpochDrop: a payload of a dead epoch (or of a session still
	// being established) was discarded by the stabilizing layer.
	LayerEpochDrop

	numLayerEvents
)

// LayerObserver receives protocol-layer events from the hardened and
// stabilizing wrappers. One observer is typically shared by every session
// endpoint a mux runs, so implementations must be safe for concurrent
// use and fast — the hooks sit on automaton transition paths.
type LayerObserver interface {
	LayerEvent(ev LayerEvent)
}

// emit forwards ev to o when an observer is configured.
func emit(o LayerObserver, ev LayerEvent) {
	if o != nil {
		o.LayerEvent(ev)
	}
}

// obsObserver counts layer events into an obs.Registry: one atomic
// counter per event kind, resolved once at construction.
type obsObserver struct {
	counters [numLayerEvents]*obs.Counter
}

// ObsObserver returns a LayerObserver that counts every event into reg
// under the rstp_layer_* names. Safe for concurrent use; each event costs
// one atomic increment.
func ObsObserver(reg *obs.Registry) LayerObserver {
	o := &obsObserver{}
	o.counters[LayerRetransmit] = reg.Counter("rstp_layer_retransmits_total",
		"hardened-layer payload retransmissions")
	o.counters[LayerChecksumReject] = reg.Counter("rstp_layer_checksum_rejects_total",
		"packets dropped on a hardened-layer checksum failure")
	o.counters[LayerStaleDrop] = reg.Counter("rstp_layer_stale_drops_total",
		"duplicate or out-of-date payloads discarded by the hardened layer")
	o.counters[LayerResync] = reg.Counter("rstp_layer_resyncs_total",
		"stabilizing-layer epoch rewinds committed by the transmitter")
	o.counters[LayerRewindAdopt] = reg.Counter("rstp_layer_rewind_adopts_total",
		"REWIND epochs adopted by the stabilizing receiver")
	o.counters[LayerCtrlReject] = reg.Counter("rstp_layer_ctrl_rejects_total",
		"stabilizing-layer control packets dropped on checksum failure")
	o.counters[LayerEpochDrop] = reg.Counter("rstp_layer_epoch_drops_total",
		"dead-epoch payloads discarded by the stabilizing layer")
	return o
}

// LayerEvent implements LayerObserver.
func (o *obsObserver) LayerEvent(ev LayerEvent) {
	if ev >= 0 && ev < numLayerEvents {
		o.counters[ev].Inc()
	}
}
