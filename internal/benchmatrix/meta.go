// Package benchmatrix is the performance paper trail: a deterministic,
// seeded benchmark matrix over the serving stack. It enumerates cells
// across {protocol × transport × chaos plan × session count}, executes
// each cell through the real internal/session + internal/transport
// machinery with an isolated obs registry, and reduces every cell to
// one Record — goodput, sessions/sec, allocs per write, effort-gap
// mean/p99 against the paper's Thm 5.3/5.6 lower bound, deadline-margin
// p50/p99, prefix violations. Records are committed as a single
// schema-versioned BENCH_matrix.json stamped with commit metadata, and
// Compare diffs two such files so CI can fail a PR that regresses a
// cell beyond a threshold. Every later perf claim in the ROADMAP gets
// its before/after from this file.
//
// The harness shape follows mengelbart/cgo-streamer's benchmark runner
// (SNIPPETS.md snippet 3): a struct per cell, a String identity, JSON
// out, commit/version stamping — but cells here run in-process against
// the mux rather than forking server/client commands.
package benchmatrix

import (
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"strings"
)

// Meta stamps a benchmark artifact with enough provenance to compare it
// against any other run: which commit produced it, on what Go toolchain,
// at what parallelism, and when. It is shared by every BENCH_*.json
// emitter in the repo (rstpserve -bench, the obs/journal/control bench
// guards, and the matrix itself), so all committed snapshots are
// attributable to a commit.
type Meta struct {
	// Schema tags the artifact's layout; each emitter sets its own
	// (e.g. "rstp-bench-matrix/v1").
	Schema string `json:"schema"`
	// Commit is the git commit hash the artifact was produced from,
	// "unknown" when no VCS information is reachable.
	Commit string `json:"commit"`
	// GoVersion is runtime.Version() of the producing toolchain.
	GoVersion string `json:"go_version"`
	// GOMAXPROCS is the parallelism the run executed at.
	GOMAXPROCS int `json:"gomaxprocs"`
	// Wall is the caller-supplied wall-clock stamp (RFC3339 by
	// convention). It is passed in rather than read here so the rest of
	// a Record stays a pure function of its seed — and so tests can pin
	// it when diffing artifacts byte for byte.
	Wall string `json:"wall,omitempty"`
}

// NewMeta builds a Meta for the current process: schema and wall come
// from the caller, commit from DetectCommit, the rest from the runtime.
func NewMeta(schema, wall string) Meta {
	return Meta{
		Schema:     schema,
		Commit:     DetectCommit(),
		GoVersion:  runtime.Version(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Wall:       wall,
	}
}

// DetectCommit resolves the producing commit hash, most authoritative
// source first: the RSTP_COMMIT / GITHUB_SHA environment overrides (CI
// knows exactly what it checked out), the binary's embedded VCS stamp
// (go build in a git work tree), then a best-effort `git rev-parse
// HEAD`. "unknown" when all three come up empty — never an error, since
// provenance must not fail a benchmark run.
func DetectCommit() string {
	for _, env := range []string{"RSTP_COMMIT", "GITHUB_SHA"} {
		if v := strings.TrimSpace(os.Getenv(env)); v != "" {
			return v
		}
	}
	if info, ok := debug.ReadBuildInfo(); ok {
		for _, s := range info.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		if v := strings.TrimSpace(string(out)); v != "" {
			return v
		}
	}
	return "unknown"
}
