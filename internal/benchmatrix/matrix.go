package benchmatrix

import (
	"fmt"
	"strings"
)

// Cell identifies one benchmark matrix cell: a protocol family (and its
// alphabet size), a transport, a chaos plan and a session count. The
// cell's Name is its identity across runs — Compare joins old and new
// records on it — so the naming scheme is part of the schema.
type Cell struct {
	// Proto is the protocol family: "alpha", "beta", "gamma" or
	// "rateless" (the fountain-coded burst subsystem).
	Proto string `json:"proto"`
	// K is the transmitter alphabet size for beta/gamma/rateless (0 for
	// alpha, whose alphabet is binary by construction).
	K int `json:"k,omitempty"`
	// Transport is "mem" (in-memory scheduler enforcing delay <= d) or
	// "udp" (real loopback sockets).
	Transport string `json:"transport"`
	// Chaos names the fault plan the cell runs under: "none", "loss"
	// (sustained random loss), "burst" (a dense loss+duplication burst
	// window) or "crash" (a total blackout window, the channel-level
	// rendering of a crashed hop). Chaos cells run the hardened layer —
	// the matrix measures what the serving stack ships under faults,
	// not what a bare protocol loses. The rateless family is the one
	// exception: its loss tolerance is native to the code, so it runs
	// bare everywhere — that head-to-head is the point of its row.
	Chaos string `json:"chaos"`
	// Sessions is the number of concurrent sessions driven through the
	// cell.
	Sessions int `json:"sessions"`
}

// Name renders the cell's stable identity, e.g. "beta4/mem/loss/s64".
func (c Cell) Name() string {
	proto := c.Proto
	if c.K > 0 {
		proto = fmt.Sprintf("%s%d", c.Proto, c.K)
	}
	return fmt.Sprintf("%s/%s/%s/s%d", proto, c.Transport, c.Chaos, c.Sessions)
}

// Tier selects how much of the matrix to enumerate.
type Tier int

const (
	// TierQuick is the per-PR CI tier: every protocol and every chaos
	// plan over the mem transport at 1 and 64 sessions, plus a UDP
	// fault-free row — 36 cells, small workloads, minutes not hours.
	TierQuick Tier = iota
	// TierFull is the nightly tier: the full cross product over both
	// transports at 1/64/1000 sessions, plus the 10k-session scale
	// probes on the fault-free mem path.
	TierFull
)

// String names the tier for artifacts and logs.
func (t Tier) String() string {
	switch t {
	case TierQuick:
		return "quick"
	case TierFull:
		return "full"
	default:
		return fmt.Sprintf("tier(%d)", int(t))
	}
}

// DefaultK is the alphabet size the matrix runs beta and gamma at; one
// k per family keeps the cell count quadratic, and k=4 is the repo's
// serving default (cmd/rstpserve).
const DefaultK = 4

var (
	protos     = []string{"alpha", "beta", "gamma", "rateless"}
	transports = []string{"mem", "udp"}
	chaosPlans = []string{"none", "loss", "burst", "crash"}
)

// Enumerate lists the matrix cells of a tier in deterministic order
// (protocol, then transport, then chaos, then session count).
func Enumerate(tier Tier) []Cell {
	var out []Cell
	add := func(proto, trans, chaos string, sessions int) {
		k := 0
		if proto != "alpha" {
			k = DefaultK
		}
		out = append(out, Cell{Proto: proto, K: k, Transport: trans, Chaos: chaos, Sessions: sessions})
	}
	switch tier {
	case TierQuick:
		for _, proto := range protos {
			for _, chaos := range chaosPlans {
				for _, sessions := range []int{1, 64} {
					add(proto, "mem", chaos, sessions)
				}
			}
			add(proto, "udp", "none", 64)
		}
	default: // TierFull
		for _, proto := range protos {
			for _, trans := range transports {
				for _, chaos := range chaosPlans {
					for _, sessions := range []int{1, 64, 1000} {
						add(proto, trans, chaos, sessions)
					}
				}
			}
			add(proto, "mem", "none", 10000)
		}
	}
	return out
}

// Filter keeps the cells whose Name contains at least one of the
// comma-separated tokens in expr (empty expr keeps everything) — the
// -cells flag. It returns an error when the expression matches nothing,
// since a silently empty matrix would read as "covered everything".
func Filter(cells []Cell, expr string) ([]Cell, error) {
	expr = strings.TrimSpace(expr)
	if expr == "" {
		return cells, nil
	}
	var tokens []string
	for _, tok := range strings.Split(expr, ",") {
		if tok = strings.TrimSpace(tok); tok != "" {
			tokens = append(tokens, tok)
		}
	}
	var out []Cell
	for _, c := range cells {
		name := c.Name()
		for _, tok := range tokens {
			if strings.Contains(name, tok) {
				out = append(out, c)
				break
			}
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("benchmatrix: -cells filter %q matches none of the %d cells", expr, len(cells))
	}
	return out, nil
}
