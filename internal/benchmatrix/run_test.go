package benchmatrix

import (
	"context"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/obs"
)

func testCfg(seed int64) RunConfig {
	return RunConfig{
		Seed:        seed,
		Tick:        20 * time.Microsecond,
		CellTimeout: 30 * time.Second,
		Attempts:    1,
	}
}

// TestRunCellSmoke drives one small cell per protocol/chaos shape end
// to end and checks the record carries everything the acceptance
// criteria name: throughput, allocs, effort-gap and deadline-margin
// percentiles, zero prefix violations.
func TestRunCellSmoke(t *testing.T) {
	cells := []Cell{
		{Proto: "beta", K: 4, Transport: "mem", Chaos: "none", Sessions: 2},
		{Proto: "alpha", Transport: "mem", Chaos: "loss", Sessions: 2},
		{Proto: "gamma", K: 4, Transport: "mem", Chaos: "crash", Sessions: 1},
		{Proto: "beta", K: 4, Transport: "udp", Chaos: "none", Sessions: 2},
	}
	for _, cell := range cells {
		cell := cell
		t.Run(cell.Name(), func(t *testing.T) {
			rec, err := RunCell(context.Background(), cell, testCfg(7))
			if err != nil {
				t.Fatal(err)
			}
			if rec.Violations != 0 {
				t.Fatalf("%d prefix violations", rec.Violations)
			}
			if rec.Completed != cell.Sessions {
				t.Fatalf("completed %d of %d sessions (errors %d)", rec.Completed, cell.Sessions, rec.Errors)
			}
			if rec.GoodputMsgSec <= 0 || rec.WallMS <= 0 {
				t.Errorf("no throughput measured: %+v", rec)
			}
			if rec.Writes != cell.Sessions*rec.BitsPerSession {
				t.Errorf("writes = %d, want %d", rec.Writes, cell.Sessions*rec.BitsPerSession)
			}
			if rec.EffortLowerBound <= 0 {
				t.Errorf("effort lower bound not set")
			}
			if rec.EffortGapMeanTicks == 0 && rec.EffortGapP99Ticks == 0 {
				t.Errorf("effort gap not measured: %+v", rec)
			}
			// A mean of several ticks with a zero p99 means the quantile
			// drowned in the histogram's +Inf bucket (too-narrow bounds).
			if rec.EffortGapMeanTicks > 1 && rec.EffortGapP99Ticks <= 0 {
				t.Errorf("effort gap p99 unresolved: mean=%.1f p99=%d", rec.EffortGapMeanTicks, rec.EffortGapP99Ticks)
			}
			if rec.DeadlineMarginP50Ticks == 0 && rec.DeadlineMarginP99Ticks == 0 {
				t.Errorf("deadline margins not measured: %+v", rec)
			}
			if rec.InputHash == "" || rec.Stack == "" {
				t.Errorf("workload identity missing: hash %q stack %q", rec.InputHash, rec.Stack)
			}
			if (cell.Chaos != "none" || cell.Transport == "udp") && rec.Stack == cell.Proto {
				t.Errorf("chaos/udp cell ran the bare stack %q", rec.Stack)
			}
		})
	}
}

// TestQuantileOrFloor pins the overflow clamp: a tail past every finite
// bucket reports the largest finite bound, while a genuine zero-bound
// quantile and an empty histogram still report 0.
func TestQuantileOrFloor(t *testing.T) {
	mk := func(counts ...int64) obs.HistogramSnapshot {
		// Cumulative counts over bounds -2, 0, 4, +Inf.
		bounds := []int64{-2, 0, 4}
		h := obs.HistogramSnapshot{Count: counts[len(counts)-1]}
		for i, c := range counts {
			b := obs.HistogramBucket{Count: c}
			if i < len(bounds) {
				b.LE = bounds[i]
			} else {
				b.Inf = true
			}
			h.Buckets = append(h.Buckets, b)
		}
		return h
	}
	if got := quantileOrFloor(mk(0, 0, 1, 100), 0.99); got != 4 {
		t.Errorf("overflowed p99 = %d, want floor 4", got)
	}
	if got := quantileOrFloor(mk(0, 100, 100, 100), 0.99); got != 0 {
		t.Errorf("zero-bound p99 = %d, want 0", got)
	}
	if got := quantileOrFloor(mk(40, 100, 100, 100), 0.50); got != 0 {
		t.Errorf("zero-bound p50 = %d, want 0", got)
	}
	if got := quantileOrFloor(obs.HistogramSnapshot{}, 0.99); got != 0 {
		t.Errorf("empty histogram p99 = %d, want 0", got)
	}
	if got := quantileOrFloor(mk(0, 0, 100, 100), 0.99); got != 4 {
		t.Errorf("resolved p99 = %d, want 4", got)
	}
}

// TestRunDeterminism: the same seed yields byte-identical canonical
// records — the workload fields (inputs, their hash, outcome counts)
// are a pure function of the seed; only the measured fields (wall,
// goodput, allocs, percentiles) may differ between runs.
func TestRunDeterminism(t *testing.T) {
	cells := []Cell{
		{Proto: "beta", K: 4, Transport: "mem", Chaos: "none", Sessions: 2},
		{Proto: "beta", K: 4, Transport: "mem", Chaos: "loss", Sessions: 2},
	}
	run := func(seed int64) []Record {
		f, err := Run(context.Background(), cells, testCfg(seed))
		if err != nil {
			t.Fatal(err)
		}
		return f.Cells
	}
	a, b := run(3), run(3)
	for i := range a {
		ca, _ := json.Marshal(a[i].Canonical())
		cb, _ := json.Marshal(b[i].Canonical())
		if string(ca) != string(cb) {
			t.Errorf("cell %s: canonical records differ across runs:\n  %s\n  %s", a[i].Cell.Name(), ca, cb)
		}
	}
	// A different seed must actually change the workload.
	c := run(4)
	if a[0].InputHash == c[0].InputHash {
		t.Errorf("seed 3 and 4 produced the same input hash %s", a[0].InputHash)
	}
}

// TestLessSafe pins the attempt-merge order: violations dominate, then
// lost completions; an equally safe record is not "less safe".
func TestLessSafe(t *testing.T) {
	clean := Record{Completed: 64}
	if !lessSafe(Record{Completed: 64, Violations: 1}, clean) {
		t.Error("violating attempt not ranked less safe")
	}
	if !lessSafe(Record{Completed: 60}, clean) {
		t.Error("incomplete attempt not ranked less safe")
	}
	if lessSafe(clean, Record{Completed: 64, Violations: 1}) {
		t.Error("clean attempt ranked below violating one")
	}
	if lessSafe(clean, clean) {
		t.Error("equal records ranked")
	}
}

// TestRunBestOfAttempts: with Attempts > 1 a fault-free cell still
// yields one coherent record (workload fields intact, sessions counted
// once), while a chaos cell is never repeated.
func TestRunBestOfAttempts(t *testing.T) {
	cfg := testCfg(9)
	cfg.Attempts = 2
	cells := []Cell{
		{Proto: "beta", K: 4, Transport: "mem", Chaos: "none", Sessions: 2},
		{Proto: "beta", K: 4, Transport: "mem", Chaos: "loss", Sessions: 1},
	}
	f, err := Run(context.Background(), cells, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, rec := range f.Cells {
		if rec.Completed != rec.Cell.Sessions || rec.Violations != 0 {
			t.Errorf("%s: completed=%d violations=%d, want %d/0",
				rec.Cell.Name(), rec.Completed, rec.Violations, rec.Cell.Sessions)
		}
		if rec.Writes != rec.Cell.Sessions*rec.BitsPerSession {
			t.Errorf("%s: attempt merge corrupted writes: %d", rec.Cell.Name(), rec.Writes)
		}
	}
}

// TestRunAssemblesFile: Run stamps meta and tick and keeps cell order.
func TestRunAssemblesFile(t *testing.T) {
	cells := []Cell{{Proto: "alpha", Transport: "mem", Chaos: "none", Sessions: 1}}
	cfg := testCfg(5)
	cfg.Wall = "2026-08-08T00:00:00Z"
	f, err := Run(context.Background(), cells, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if f.Meta.Schema != Schema || f.Meta.GoVersion == "" || f.Meta.Wall != cfg.Wall {
		t.Errorf("meta = %+v", f.Meta)
	}
	if f.TickMicros != 20 {
		t.Errorf("tick_us = %v, want 20", f.TickMicros)
	}
	if len(f.Cells) != 1 || f.Cells[0].Cell.Name() != "alpha/mem/none/s1" {
		t.Errorf("cells = %+v", f.Cells)
	}
}
