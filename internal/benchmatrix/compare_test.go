package benchmatrix

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func mkFile(goodput float64, violations, completed, writes int) *File {
	return &File{
		Meta: NewMeta(Schema, ""),
		Cells: []Record{{
			Cell:          Cell{Proto: "beta", K: 4, Transport: "mem", Chaos: "none", Sessions: 64},
			GoodputMsgSec: goodput,
			Violations:    violations,
			Completed:     completed,
			Writes:        writes,
		}},
	}
}

// TestCompareThreshold: a synthetic 15% throughput drop is flagged at
// the default 10% threshold, a 5% drop passes.
func TestCompareThreshold(t *testing.T) {
	old := mkFile(1000, 0, 64, 1536)
	drop15 := mkFile(850, 0, 64, 1536)
	drop5 := mkFile(950, 0, 64, 1536)

	cmp := Compare(old, drop15, CompareOptions{})
	if len(cmp.Regressions) != 1 {
		t.Fatalf("15%% drop: %d regressions, want 1 (%+v)", len(cmp.Regressions), cmp.Deltas)
	}
	if r := cmp.Regressions[0]; !strings.Contains(r.Reason, "goodput dropped") {
		t.Errorf("15%% drop reason = %q", r.Reason)
	}

	cmp = Compare(old, drop5, CompareOptions{})
	if len(cmp.Regressions) != 0 {
		t.Fatalf("5%% drop regressed: %+v", cmp.Regressions)
	}

	// A tightened threshold flips the 5% verdict.
	cmp = Compare(old, drop5, CompareOptions{Threshold: 0.03})
	if len(cmp.Regressions) != 1 {
		t.Fatalf("5%% drop at 3%% threshold: %d regressions, want 1", len(cmp.Regressions))
	}
}

// TestCompareViolationsAlwaysFlag: a new prefix violation regresses the
// cell even when throughput improved.
func TestCompareViolationsAlwaysFlag(t *testing.T) {
	old := mkFile(1000, 0, 64, 1536)
	faster := mkFile(2000, 1, 63, 1536)
	cmp := Compare(old, faster, CompareOptions{})
	if len(cmp.Regressions) != 1 || !strings.Contains(cmp.Regressions[0].Reason, "violation") {
		t.Fatalf("new violation not flagged: %+v", cmp.Regressions)
	}
}

// TestCompareMissingCell: losing a baseline cell is a regression (lost
// coverage), a brand-new cell is informational.
func TestCompareMissingCell(t *testing.T) {
	old := mkFile(1000, 0, 64, 1536)
	extra := Record{Cell: Cell{Proto: "gamma", K: 4, Transport: "mem", Chaos: "none", Sessions: 64}, GoodputMsgSec: 10}
	newf := &File{Meta: NewMeta(Schema, ""), Cells: []Record{extra}}
	cmp := Compare(old, newf, CompareOptions{})
	if len(cmp.Regressions) != 1 || !cmp.Regressions[0].Missing {
		t.Fatalf("missing baseline cell not flagged: %+v", cmp.Regressions)
	}
	if len(cmp.Added) != 1 {
		t.Fatalf("added cells = %v, want one", cmp.Added)
	}
}

// TestCompareSmallSampleIgnored: cells below MinWrites baseline writes
// are not throughput-gated (their goodput is noise), but violations in
// them still flag.
func TestCompareSmallSampleIgnored(t *testing.T) {
	old := mkFile(1000, 0, 64, 4)
	slow := mkFile(100, 0, 64, 4)
	if cmp := Compare(old, slow, CompareOptions{}); len(cmp.Regressions) != 0 {
		t.Fatalf("tiny cell throughput gated: %+v", cmp.Regressions)
	}
	bad := mkFile(1000, 2, 62, 4)
	if cmp := Compare(old, bad, CompareOptions{}); len(cmp.Regressions) != 1 {
		t.Fatalf("tiny cell violation not gated: %+v", cmp.Regressions)
	}
}

// TestCompareAllocGate: allocs-per-write growth past the alloc
// threshold flags an in-memory fault-free cell; the same growth in a
// UDP or chaos cell (retransmit-count dependent) passes.
func TestCompareAllocGate(t *testing.T) {
	withAllocs := func(f *File, a float64) *File {
		f.Cells[0].AllocsPerWrite = a
		return f
	}
	old := withAllocs(mkFile(1000, 0, 64, 1536), 32)
	grown := withAllocs(mkFile(1000, 0, 64, 1536), 44) // +37.5%
	cmp := Compare(old, grown, CompareOptions{})
	if len(cmp.Regressions) != 1 || !strings.Contains(cmp.Regressions[0].Reason, "allocs/write grew") {
		t.Fatalf("alloc growth not flagged: %+v", cmp.Regressions)
	}
	// +15% stays under the default 25% threshold.
	mild := withAllocs(mkFile(1000, 0, 64, 1536), 36.8)
	if cmp := Compare(old, mild, CompareOptions{}); len(cmp.Regressions) != 0 {
		t.Fatalf("mild alloc growth flagged: %+v", cmp.Regressions)
	}
	// The same growth in a UDP cell is retransmit noise, not a gate.
	oldUDP, grownUDP := withAllocs(mkFile(1000, 0, 64, 1536), 32), withAllocs(mkFile(1000, 0, 64, 1536), 44)
	oldUDP.Cells[0].Cell.Transport = "udp"
	grownUDP.Cells[0].Cell.Transport = "udp"
	if cmp := Compare(oldUDP, grownUDP, CompareOptions{}); len(cmp.Regressions) != 0 {
		t.Fatalf("udp alloc growth flagged: %+v", cmp.Regressions)
	}
}

// TestCompareChaosCellsNotGoodputGated: chaos cells' wall time is
// retransmission-timer noise, so even a huge goodput drop passes — but
// a violation or a lost completion in the same cell still flags.
func TestCompareChaosCellsNotGoodputGated(t *testing.T) {
	chaos := func(goodput float64, violations, completed int) *File {
		f := mkFile(goodput, violations, completed, 1536)
		f.Cells[0].Cell.Chaos = "loss"
		return f
	}
	old := chaos(1000, 0, 64)
	if cmp := Compare(old, chaos(200, 0, 64), CompareOptions{}); len(cmp.Regressions) != 0 {
		t.Fatalf("chaos cell goodput gated: %+v", cmp.Regressions)
	}
	if cmp := Compare(old, chaos(1000, 1, 63), CompareOptions{}); len(cmp.Regressions) != 1 {
		t.Fatalf("chaos cell violation not gated: %+v", cmp.Regressions)
	}
	if cmp := Compare(old, chaos(1000, 0, 60), CompareOptions{}); len(cmp.Regressions) != 1 {
		t.Fatalf("chaos cell lost completions not gated: %+v", cmp.Regressions)
	}
}

// TestLoadRejectsBadBaselines: malformed JSON, an old/foreign schema
// tag, and an empty cell list are all rejected with errors that say how
// to regenerate the artifact.
func TestLoadRejectsBadBaselines(t *testing.T) {
	dir := t.TempDir()
	write := func(name, content string) string {
		p := filepath.Join(dir, name)
		if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
		return p
	}

	if _, err := Load(write("garbage.json", "{not json")); err == nil {
		t.Error("malformed baseline accepted")
	}
	_, err := Load(write("old.json", `{"meta":{"schema":"rstp-bench-matrix/v0"},"cells":[{"proto":"beta"}]}`))
	if err == nil || !strings.Contains(err.Error(), "rstp-bench-matrix/v1") || !strings.Contains(err.Error(), "regenerate") {
		t.Errorf("old-schema baseline error = %v, want a schema mismatch naming the expected tag and the regenerate command", err)
	}
	// A different emitter's artifact (BENCH_serve.json shape) has no
	// meta.schema at all — same rejection path.
	if _, err := Load(write("serve.json", `{"schema":"rstp-bench-serve/v1","sessions":200}`)); err == nil {
		t.Error("foreign artifact accepted")
	}
	if _, err := Load(write("empty.json", `{"meta":{"schema":"rstp-bench-matrix/v1"},"cells":[]}`)); err == nil {
		t.Error("empty baseline accepted")
	}
	if _, err := Load(filepath.Join(dir, "absent.json")); err == nil {
		t.Error("missing baseline accepted")
	}

	// Round trip: what Write produced, Load accepts.
	good := mkFile(1000, 0, 64, 1536)
	p := filepath.Join(dir, "good.json")
	if err := good.Write(p); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(p)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded.Cells) != 1 || loaded.Meta.Schema != Schema {
		t.Errorf("round trip lost data: %+v", loaded)
	}
	if loaded.Meta.GoVersion == "" || loaded.Meta.GOMAXPROCS == 0 {
		t.Errorf("meta not stamped: %+v", loaded.Meta)
	}
}
