package benchmatrix

import (
	"encoding/json"
	"fmt"
	"os"
)

// Schema is the artifact schema tag. Bump it on any layout change that
// Compare cannot bridge; Load rejects other tags with instructions to
// regenerate, so a stale baseline fails loudly instead of producing
// nonsense deltas.
const Schema = "rstp-bench-matrix/v1"

// Record is one matrix cell reduced to numbers. The fields split into
// two groups: the *workload* fields (the cell identity, seed, input
// size and hash, and the protocol-level outcome counts), which are a
// pure function of the seed and must reproduce byte-identically across
// runs — Canonical() isolates them — and the *measured* fields
// (anything derived from the wall clock, the allocator or OS
// scheduling), which vary run to run and are what Compare diffs.
type Record struct {
	Cell
	// Seed is the cell's derived input/fault seed.
	Seed int64 `json:"seed"`
	// BitsPerSession is the input length |X| of every session.
	BitsPerSession int `json:"bits_per_session"`
	// InputHash is an FNV-64 hash over every session's input bits: two
	// runs of the same cell at the same seed must agree on it, or the
	// workload itself — not just the measurement — has diverged.
	InputHash string `json:"input_hash"`
	// Stack names the assembled protocol stack, e.g. "hardened(beta(k=4))".
	Stack string `json:"stack"`

	// Outcome counts. Violations is the number of sessions whose output
	// tape was NOT a prefix of their input — the paper's safety
	// condition; any nonzero value is a correctness failure, and Compare
	// flags it regardless of thresholds.
	Completed  int `json:"completed"`
	Incomplete int `json:"incomplete"`
	Violations int `json:"violations"`
	Errors     int `json:"errors"`
	Writes     int `json:"writes"`

	// Measured traffic and timing.
	Sends          int     `json:"sends"`
	Deliveries     int     `json:"deliveries"`
	WallMS         float64 `json:"wall_ms"`
	SessionsPerSec float64 `json:"sessions_per_sec"`
	// GoodputMsgSec is messages written per wall second — the
	// throughput number the CI regression gate is keyed on.
	GoodputMsgSec float64 `json:"goodput_msgs_per_sec"`
	// AllocsPerWrite is heap allocations per message written across the
	// whole cell (runtime.MemStats delta), the serving path's allocation
	// rate at this cell's shape.
	AllocsPerWrite float64 `json:"allocs_per_write"`

	// Effort against the paper. EffortLowerBound is the Thm 5.3 (alpha/
	// beta) or Thm 5.6 (gamma) per-message bound in ticks for this
	// cell's protocol; the gap statistics are the live interwrite gap
	// minus that bound — the measured distance from optimality.
	EffortLowerBound   float64 `json:"effort_lower_bound_ticks_per_msg"`
	EffortMeanTicks    float64 `json:"effort_mean_ticks_per_msg"`
	EffortGapMeanTicks float64 `json:"effort_gap_mean_ticks"`
	EffortGapP99Ticks  int64   `json:"effort_gap_p99_ticks"`
	// Deadline margins: δ1·c2 minus the interwrite gap (negative =
	// deadline miss), at the median and the tail.
	DeadlineMarginP50Ticks int64 `json:"deadline_margin_p50_ticks"`
	DeadlineMarginP99Ticks int64 `json:"deadline_margin_p99_ticks"`
}

// Canonical returns the record with every measured field zeroed,
// leaving only the seed-determined workload fields: cell identity,
// seed, input size and hash, outcome counts and the (analytic, not
// measured) effort lower bound. Two runs of the same cell at the same
// seed must produce byte-identical canonical records; the determinism
// test pins exactly that.
func (r Record) Canonical() Record {
	r.Sends = 0
	r.Deliveries = 0
	r.WallMS = 0
	r.SessionsPerSec = 0
	r.GoodputMsgSec = 0
	r.AllocsPerWrite = 0
	r.EffortMeanTicks = 0
	r.EffortGapMeanTicks = 0
	r.EffortGapP99Ticks = 0
	r.DeadlineMarginP50Ticks = 0
	r.DeadlineMarginP99Ticks = 0
	r.Errors = 0
	return r
}

// File is the committed artifact: provenance plus one record per cell.
type File struct {
	Meta Meta `json:"meta"`
	// Tier names the enumeration tier the cells came from.
	Tier string `json:"tier"`
	// TickMicros is the wall-clock length of one model tick, shared by
	// every cell.
	TickMicros float64  `json:"tick_us"`
	Cells      []Record `json:"cells"`
}

// Write marshals the file to path (indented, trailing newline — the
// committed-artifact convention of the other BENCH_*.json files).
func (f *File) Write(path string) error {
	raw, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Load reads and validates a matrix artifact. A file that does not
// parse, carries a different schema tag, or holds no cells is rejected
// with an error that says how to regenerate it — a baseline from an
// older schema must never be silently diffed against a newer run.
func Load(path string) (*File, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return nil, fmt.Errorf("benchmatrix: %s is not a matrix artifact: %w", path, err)
	}
	if f.Meta.Schema != Schema {
		return nil, fmt.Errorf("benchmatrix: %s has schema %q, want %q — regenerate it with `go run ./cmd/rstpbench -matrix`", path, f.Meta.Schema, Schema)
	}
	if len(f.Cells) == 0 {
		return nil, fmt.Errorf("benchmatrix: %s holds no cells — regenerate it with `go run ./cmd/rstpbench -matrix`", path)
	}
	return &f, nil
}
