package benchmatrix

import (
	"fmt"
	"io"
	"sort"
)

// CompareOptions tunes the regression gate.
type CompareOptions struct {
	// Threshold is the relative goodput drop that flags a regression
	// (default 0.10: fail on >10% throughput loss).
	Threshold float64
	// MinWrites ignores the throughput of cells below this many writes
	// in the baseline — too small a sample to gate on (default 8).
	MinWrites int
	// AllocThreshold is the relative allocs-per-write growth that flags
	// an in-memory fault-free cell (default 0.25). Allocation counts are
	// code-determined — measured runs agree to ±2% — so unlike wall-clock
	// goodput this gate holds on noisy shared hardware.
	AllocThreshold float64
}

// goodputGated reports whether a cell's goodput is stable enough to
// hold to the threshold. Fault-free cells are tick-paced — the protocol
// sends on schedule, so wall time is ticks × tick length and a real
// slowdown shows as a real drop. Chaos cells' wall time is dominated by
// retransmission-timer tails racing the wall clock: identical code
// swings 50-80% run to run, so they gate on safety (violations,
// completion) only.
func goodputGated(c Cell) bool {
	return c.Chaos == "none"
}

// allocGated reports whether a cell's allocs-per-write is held to the
// alloc threshold: in-memory fault-free cells only — chaos and UDP
// cells retransmit a variable number of times, so their allocation
// counts track channel behavior, not code.
func allocGated(c Cell) bool {
	return c.Chaos == "none" && c.Transport == "mem"
}

func (o CompareOptions) withDefaults() CompareOptions {
	if o.Threshold <= 0 {
		o.Threshold = 0.10
	}
	if o.MinWrites <= 0 {
		o.MinWrites = 8
	}
	if o.AllocThreshold <= 0 {
		o.AllocThreshold = 0.25
	}
	return o
}

// CellDelta is one cell's old-vs-new comparison.
type CellDelta struct {
	Name string `json:"name"`
	// OldGoodput/NewGoodput are msgs/sec; DropFrac is the relative loss
	// (positive = new is slower), 0 when the baseline had no goodput.
	OldGoodput float64 `json:"old_goodput_msgs_per_sec"`
	NewGoodput float64 `json:"new_goodput_msgs_per_sec"`
	DropFrac   float64 `json:"drop_frac"`
	// OldAllocs/NewAllocs are allocs-per-write; GrowthFrac is the
	// relative allocation growth (positive = new allocates more).
	OldAllocs  float64 `json:"old_allocs_per_write,omitempty"`
	NewAllocs  float64 `json:"new_allocs_per_write,omitempty"`
	GrowthFrac float64 `json:"alloc_growth_frac,omitempty"`
	// NewViolations counts prefix violations in the new run; any are a
	// regression regardless of thresholds. NewIncomplete likewise flags
	// sessions that stopped completing.
	NewViolations int `json:"new_violations,omitempty"`
	NewIncomplete int `json:"new_incomplete,omitempty"`
	// Missing marks a cell present in the baseline but absent from the
	// new run — lost coverage reads as a regression, not as a pass.
	Missing bool `json:"missing,omitempty"`
	// Regressed is the gate verdict; Reason says why.
	Regressed bool   `json:"regressed"`
	Reason    string `json:"reason,omitempty"`
}

// Comparison is the full per-cell diff of two matrix artifacts.
type Comparison struct {
	// Deltas holds one entry per baseline cell (worst drop first).
	Deltas []CellDelta `json:"deltas"`
	// Regressions is the flagged subset, same order.
	Regressions []CellDelta `json:"regressions,omitempty"`
	// Added names cells in the new run with no baseline — informational.
	Added []string `json:"added,omitempty"`
}

// Compare diffs a new matrix run against a committed baseline, cell by
// cell (joined on Cell.Name). It returns the per-cell deltas plus the
// flagged regressions: a goodput drop beyond the threshold in a
// fault-free cell (see goodputGated), allocs-per-write growth beyond
// the alloc threshold in an in-memory fault-free cell (see allocGated),
// any new prefix violation in any cell, sessions that stopped
// completing, or a baseline cell the new run no longer covers.
func Compare(old, new *File, opt CompareOptions) Comparison {
	opt = opt.withDefaults()
	newByName := make(map[string]Record, len(new.Cells))
	for _, r := range new.Cells {
		newByName[r.Cell.Name()] = r
	}
	oldNames := make(map[string]bool, len(old.Cells))

	var cmp Comparison
	for _, o := range old.Cells {
		name := o.Cell.Name()
		oldNames[name] = true
		n, ok := newByName[name]
		if !ok {
			cmp.Deltas = append(cmp.Deltas, CellDelta{
				Name: name, OldGoodput: o.GoodputMsgSec,
				Missing: true, Regressed: true,
				Reason: "cell missing from new run",
			})
			continue
		}
		d := CellDelta{
			Name:          name,
			OldGoodput:    o.GoodputMsgSec,
			NewGoodput:    n.GoodputMsgSec,
			OldAllocs:     o.AllocsPerWrite,
			NewAllocs:     n.AllocsPerWrite,
			NewViolations: n.Violations,
			NewIncomplete: n.Incomplete,
		}
		if o.GoodputMsgSec > 0 {
			d.DropFrac = (o.GoodputMsgSec - n.GoodputMsgSec) / o.GoodputMsgSec
		}
		if o.AllocsPerWrite > 0 {
			d.GrowthFrac = (n.AllocsPerWrite - o.AllocsPerWrite) / o.AllocsPerWrite
		}
		switch {
		case n.Violations > 0:
			d.Regressed = true
			d.Reason = fmt.Sprintf("%d prefix violation(s)", n.Violations)
		case n.Completed < o.Completed:
			d.Regressed = true
			d.Reason = fmt.Sprintf("completed %d, baseline completed %d", n.Completed, o.Completed)
		case allocGated(o.Cell) && o.Writes >= opt.MinWrites && d.GrowthFrac > opt.AllocThreshold:
			d.Regressed = true
			d.Reason = fmt.Sprintf("allocs/write grew %.1f%% (%.1f -> %.1f, > %.0f%% threshold)",
				100*d.GrowthFrac, o.AllocsPerWrite, n.AllocsPerWrite, 100*opt.AllocThreshold)
		case goodputGated(o.Cell) && o.Writes >= opt.MinWrites && d.DropFrac > opt.Threshold:
			d.Regressed = true
			d.Reason = fmt.Sprintf("goodput dropped %.1f%% (> %.0f%% threshold)", 100*d.DropFrac, 100*opt.Threshold)
		}
		cmp.Deltas = append(cmp.Deltas, d)
	}
	for _, r := range new.Cells {
		if name := r.Cell.Name(); !oldNames[name] {
			cmp.Added = append(cmp.Added, name)
		}
	}
	sort.SliceStable(cmp.Deltas, func(i, j int) bool {
		di, dj := cmp.Deltas[i], cmp.Deltas[j]
		if di.Regressed != dj.Regressed {
			return di.Regressed
		}
		return di.DropFrac > dj.DropFrac
	})
	for _, d := range cmp.Deltas {
		if d.Regressed {
			cmp.Regressions = append(cmp.Regressions, d)
		}
	}
	return cmp
}

// Render prints the comparison for humans: the regressions first (all
// of them), then the top movers, so a failing CI log leads with exactly
// the cells that broke the gate.
func (c Comparison) Render(w io.Writer, top int) {
	if top <= 0 {
		top = 10
	}
	if len(c.Regressions) > 0 {
		fmt.Fprintf(w, "REGRESSED %d cell(s):\n", len(c.Regressions))
		for _, d := range c.Regressions {
			fmt.Fprintf(w, "  %-24s %9.0f -> %9.0f msg/s  %s\n", d.Name, d.OldGoodput, d.NewGoodput, d.Reason)
		}
	} else {
		fmt.Fprintf(w, "no regressions across %d cell(s)\n", len(c.Deltas))
	}
	n := top
	if n > len(c.Deltas) {
		n = len(c.Deltas)
	}
	if n > 0 {
		fmt.Fprintf(w, "top movers (by goodput drop):\n")
		for _, d := range c.Deltas[:n] {
			fmt.Fprintf(w, "  %-24s %9.0f -> %9.0f msg/s  (%+.1f%%)\n", d.Name, d.OldGoodput, d.NewGoodput, -100*d.DropFrac)
		}
	}
	if len(c.Added) > 0 {
		fmt.Fprintf(w, "new cells (no baseline): %d\n", len(c.Added))
	}
}
