package benchmatrix

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/chanmodel"
	"repro/internal/faults"
	"repro/internal/obs"
	"repro/internal/rateless"
	"repro/internal/rstp"
	"repro/internal/session"
	"repro/internal/transport"
	"repro/internal/wire"
)

// RunConfig shapes a matrix run. The zero value is usable: serving
// defaults for the timing constants, 50µs ticks, 24-bit inputs.
type RunConfig struct {
	// Seed is the base seed; each cell derives its own by hashing its
	// Name into it, so a -cells filter never shifts another cell's
	// workload.
	Seed int64
	// Tick is the wall-clock length of one model tick (default 50µs,
	// rstpserve's bench setting).
	Tick time.Duration
	// Params are the timing constants (default c1=2 c2=3 d=12).
	Params rstp.Params
	// MinBits is the minimum input length per session, rounded up to a
	// whole number of protocol blocks (default 24, the committed
	// BENCH_serve.json workload).
	MinBits int
	// MaxConc caps concurrently open sessions per cell (default
	// min(sessions, 512), rstpserve's rule).
	MaxConc int
	// CellTimeout bounds one cell's wall time at 64 sessions; larger
	// cells scale it linearly (default 60s).
	CellTimeout time.Duration
	// Attempts runs each throughput-gated (fault-free) cell this many
	// times and keeps the best-goodput record (default 3, minimum 1).
	// The workload is identical across attempts — only the measured
	// fields differ — so "best" is the machine's demonstrated capability
	// with scheduler noise stripped: a real regression is slow on every
	// attempt, a noisy run is not. Chaos cells are never repeated; their
	// goodput is retransmission-timer noise and is not gated.
	Attempts int
	// Wall stamps File.Meta (caller's clock; see Meta.Wall).
	Wall string
	// Logf, when non-nil, receives one progress line per cell.
	Logf func(format string, args ...any)
}

func (c RunConfig) withDefaults() RunConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Tick <= 0 {
		c.Tick = 50 * time.Microsecond
	}
	if c.Params == (rstp.Params{}) {
		c.Params = rstp.Params{C1: 2, C2: 3, D: 12}
	}
	if c.MinBits <= 0 {
		c.MinBits = 24
	}
	if c.CellTimeout <= 0 {
		c.CellTimeout = 60 * time.Second
	}
	if c.Attempts <= 0 {
		c.Attempts = 3
	}
	return c
}

// lessSafe orders two attempt records of the same cell by safety: more
// prefix violations, then fewer completed sessions. Run keeps the least
// safe attempt regardless of its speed.
func lessSafe(a, b Record) bool {
	if a.Violations != b.Violations {
		return a.Violations > b.Violations
	}
	return a.Completed < b.Completed
}

// cellSeed derives a cell's private seed from the base seed and the
// cell's stable name, so every cell's workload is independent of which
// other cells run beside it.
func cellSeed(base int64, c Cell) int64 {
	return int64(fnvSum([]byte(c.Name()))^uint64(base)) & math.MaxInt64
}

// fnvSum is FNV-64a, the same dependency-free hash the stabilized
// layer's checkpoints use.
func fnvSum(data []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, b := range data {
		h ^= uint64(b)
		h *= 1099511628211
	}
	return h
}

// Run executes every cell in order and assembles the committed artifact.
// Cells run strictly sequentially so one cell's goroutines and GC debris
// never pollute another's timing or allocation counts.
func Run(ctx context.Context, cells []Cell, cfg RunConfig) (*File, error) {
	cfg = cfg.withDefaults()
	f := &File{
		Meta:       NewMeta(Schema, cfg.Wall),
		TickMicros: float64(cfg.Tick) / float64(time.Microsecond),
	}
	for _, cell := range cells {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		attempts := 1
		if goodputGated(cell) {
			attempts = cfg.Attempts
		}
		var rec Record
		for a := 0; a < attempts; a++ {
			r, err := RunCell(ctx, cell, cfg)
			if err != nil {
				return nil, fmt.Errorf("cell %s: %w", cell.Name(), err)
			}
			switch {
			case a == 0 || lessSafe(r, rec):
				// A violation or lost completion on ANY attempt survives
				// into the record — a flaky safety failure must not hide
				// behind a clean rerun.
				rec = r
			case lessSafe(rec, r):
				// rec already holds the worst attempt; keep it.
			case r.GoodputMsgSec > rec.GoodputMsgSec:
				// Equally safe: keep the best-goodput attempt, the
				// machine's demonstrated capability with noise stripped.
				rec = r
			}
		}
		if cfg.Logf != nil {
			cfg.Logf("%-22s goodput=%9.0f msg/s effort_gap_mean=%7.1f ticks margin_p99=%4d completed=%d/%d violations=%d",
				cell.Name(), rec.GoodputMsgSec, rec.EffortGapMeanTicks, rec.DeadlineMarginP99Ticks,
				rec.Completed, cell.Sessions, rec.Violations)
		}
		f.Cells = append(f.Cells, rec)
	}
	return f, nil
}

// buildStack assembles a cell's protocol pair builder: the bare family
// for fault-free in-memory cells, the hardened wrapper for chaos cells
// and for every UDP cell (the matrix measures what the serving stack
// ships under faults; a bare protocol under loss simply never
// completes, and a real socket drops datagrams under 64-session load —
// the paper's no-loss channel axiom does not survive a kernel buffer).
// The rateless family is never hardened: loss tolerance is the code's
// own property, and its cells exist to measure exactly that against the
// hardened retransmission rows. It returns the builder, the family's
// block size in bits, and the paper's per-message effort lower bound
// (Thm 5.3 for the r-passive alpha/beta, Thm 5.6 for the active gamma
// and the ack-bearing rateless pair) the cell's effort-gap histogram is
// anchored to. seed pins the rateless per-block symbol streams to the
// cell; reg receives the rateless rstp_rateless_* instruments.
func buildStack(cell Cell, p rstp.Params, seed int64, reg *obs.Registry) (session.PairBuilder, int, float64, error) {
	clampLower := func(lower float64) float64 {
		if math.IsInf(lower, 1) || math.IsNaN(lower) {
			return 0
		}
		return lower
	}
	if cell.Proto == "rateless" {
		b, err := rateless.NewBuilder(rateless.Options{Params: p, K: cell.K, Seed: seed, Obs: reg})
		if err != nil {
			return nil, 0, 0, err
		}
		return b, b.BlockBits(), clampLower(rateless.LowerBound(p, cell.K)), nil
	}
	var (
		s     rstp.Solution
		lower float64
		err   error
	)
	switch cell.Proto {
	case "alpha":
		s, err = rstp.Alpha(p)
		lower = rstp.PassiveLowerBound(p, 2)
	case "beta":
		s, err = rstp.Beta(p, cell.K)
		lower = rstp.PassiveLowerBound(p, cell.K)
	case "gamma":
		s, err = rstp.Gamma(p, cell.K)
		lower = rstp.ActiveLowerBound(p, cell.K)
	default:
		return nil, 0, 0, fmt.Errorf("unknown protocol %q", cell.Proto)
	}
	if err != nil {
		return nil, 0, 0, err
	}
	var sol session.PairBuilder = s
	if cell.Chaos != "none" || cell.Transport == "udp" {
		sol = rstp.Harden(s, rstp.HardenOptions{})
	}
	return sol, s.BlockBits, clampLower(lower), nil
}

// chaosClauses renders a chaos plan name into fault clauses. Windows
// are in ticks from cell start. "loss" is sustained 15% random loss for
// the whole run; "burst" is a dense loss+duplication window early in
// the run; "crash" is a total blackout window — the channel-level
// rendering of a crashed hop that later restarts.
func chaosClauses(chaos string) ([]faults.Fault, error) {
	const forever = int64(1) << 40
	switch chaos {
	case "none":
		return nil, nil
	case "loss":
		return []faults.Fault{{From: 0, To: forever, Drop: 0.15}}, nil
	case "burst":
		return []faults.Fault{{From: 300, To: 900, Drop: 0.5, Dup: 0.2}}, nil
	case "crash":
		return []faults.Fault{{From: 300, To: 700, Blackout: true}}, nil
	default:
		return nil, fmt.Errorf("unknown chaos plan %q", chaos)
	}
}

// RunCell executes one cell: a fresh clock, transport, obs registry and
// session pipe, the cell's session count driven to completion, and the
// registry's histograms reduced into one Record. Construction failures
// return an error; a session that merely fails to finish inside the
// deadline is counted in the record instead (the gate flags it).
func RunCell(ctx context.Context, cell Cell, cfg RunConfig) (Record, error) {
	cfg = cfg.withDefaults()
	p := cfg.Params
	seed := cellSeed(cfg.Seed, cell)
	rec := Record{Cell: cell, Seed: seed}

	// Per-cell registry isolation: every cell gets a fresh registry, so
	// its histograms and counters cover exactly this cell's traffic.
	reg := obs.NewRegistry()

	sol, blockBits, lower, err := buildStack(cell, p, seed, reg)
	if err != nil {
		return rec, err
	}
	clauses, err := chaosClauses(cell.Chaos)
	if err != nil {
		return rec, err
	}

	clock := transport.NewClock(cfg.Tick)
	var trans transport.Transport
	switch cell.Transport {
	case "mem":
		var delay chanmodel.DelayPolicy = &chanmodel.UniformRandom{D: p.D, Rand: rand.New(rand.NewSource(seed))}
		if len(clauses) > 0 {
			delay = faults.NewPlan(seed, delay, clauses...)
		}
		trans = transport.NewMem(clock, transport.MemOptions{D: p.D, Delay: delay, Buffer: 1 << 15})
	case "udp":
		u, err := transport.NewUDPLoopback(1 << 14)
		if err != nil {
			return rec, err
		}
		trans = u
		if len(clauses) > 0 {
			// Chaos over UDP injects in front of the socket, adding only
			// the extra faults on top of the kernel's own latency.
			trans = transport.NewChaos(u, clock, faults.NewPlan(seed, chanmodel.Zero{}, clauses...))
		}
	default:
		return rec, fmt.Errorf("unknown transport %q", cell.Transport)
	}

	transport.Instrument(reg, trans)

	maxConc := cfg.MaxConc
	if maxConc <= 0 {
		maxConc = cell.Sessions
		if maxConc > 512 {
			maxConc = 512
		}
	}
	pipe, err := session.NewPipe(session.Config{
		Solution:         sol,
		Params:           p,
		Transport:        trans,
		Clock:            clock,
		MaxSessions:      maxConc,
		IdleTicks:        -1, // the harness evicts each session explicitly
		Obs:              reg,
		EffortLowerBound: lower,
	})
	if err != nil {
		trans.Close()
		return rec, err
	}
	defer pipe.Close()

	// Seeded inputs, rounded up to whole blocks; the hash pins the
	// workload identity for the determinism test and for Compare.
	blocks := (cfg.MinBits + blockBits - 1) / blockBits
	bits := blocks * blockBits
	rng := rand.New(rand.NewSource(seed))
	inputs := make([][]wire.Bit, cell.Sessions)
	hash := uint64(14695981039346656037)
	for i := range inputs {
		inputs[i] = wire.RandomBits(bits, rng.Uint64)
		for _, b := range inputs[i] {
			hash ^= uint64(b) + 1
			hash *= 1099511628211
		}
	}
	rec.BitsPerSession = bits
	rec.InputHash = fmt.Sprintf("%016x", hash)
	rec.Stack = sol.String()
	rec.EffortLowerBound = lower

	// Larger cells get proportionally more wall time: the budget is per
	// concurrency wave, not per cell.
	timeout := cfg.CellTimeout
	if waves := (cell.Sessions + maxConc - 1) / maxConc; waves > 1 {
		timeout = time.Duration(waves) * cfg.CellTimeout
	}
	cctx, cancel := context.WithTimeout(ctx, timeout)
	defer cancel()

	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	type outcome struct {
		res session.TransferResult
		err error
	}
	results := make([]outcome, cell.Sessions)
	start := time.Now()
	var wg sync.WaitGroup
	for i := range inputs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := pipe.Transfer(cctx, inputs[i])
			results[i] = outcome{res: res, err: err}
		}(i)
	}
	wg.Wait()
	wall := time.Since(start)
	runtime.ReadMemStats(&after)

	for _, o := range results {
		if o.err != nil {
			rec.Errors++
		}
		if o.res.Violation != "" {
			rec.Violations++
		}
		if o.res.Completed {
			rec.Completed++
		} else {
			rec.Incomplete++
		}
		rec.Writes += o.res.RX.Writes
		rec.Sends += o.res.TX.Sends + o.res.RX.Sends
		rec.Deliveries += o.res.TX.Deliveries + o.res.RX.Deliveries
	}
	rec.WallMS = float64(wall) / float64(time.Millisecond)
	if secs := wall.Seconds(); secs > 0 {
		rec.SessionsPerSec = float64(rec.Completed) / secs
		rec.GoodputMsgSec = float64(rec.Writes) / secs
	}
	if rec.Writes > 0 {
		rec.AllocsPerWrite = float64(after.Mallocs-before.Mallocs) / float64(rec.Writes)
	}

	snap := reg.Snapshot()
	if h, ok := snap.Histograms["rstp_interwrite_ticks"]; ok && h.Count > 0 {
		rec.EffortMeanTicks = h.Mean
	}
	if h, ok := snap.Histograms["rstp_effort_gap_ticks"]; ok && h.Count > 0 {
		rec.EffortGapMeanTicks = h.Mean
		rec.EffortGapP99Ticks = quantileOrFloor(h, 0.99)
	}
	if h, ok := snap.Histograms["rstp_deadline_margin_ticks"]; ok && h.Count > 0 {
		rec.DeadlineMarginP50Ticks = quantileOrFloor(h, 0.50)
		rec.DeadlineMarginP99Ticks = quantileOrFloor(h, 0.99)
	}
	return rec, nil
}

// quantileOrFloor resolves a bucket quantile like obs.BucketQuantile,
// but when the quantile lands in the +Inf bucket it reports the largest
// finite bucket bound — a bucket-resolution floor ("p99 >= 2048")
// rather than a misleading zero. A fixed-bucket histogram cannot do
// better, and a committed record must never show an unresolved tail as
// a perfect one.
func quantileOrFloor(h obs.HistogramSnapshot, q float64) int64 {
	if v := obs.BucketQuantile(h, q); v != 0 {
		return v
	}
	if h.Count == 0 {
		return 0
	}
	// BucketQuantile's zero is ambiguous: either the quantile genuinely
	// lies at the LE=0 bound, or it overflowed every finite bucket.
	// Re-walk to tell the two apart.
	need := int64(math.Ceil(q * float64(h.Count)))
	var top int64
	for _, b := range h.Buckets {
		if b.Inf {
			continue
		}
		if b.Count >= need {
			return 0 // a real zero-bound quantile
		}
		top = b.LE
	}
	return top
}
