package benchmatrix

import (
	"strings"
	"testing"
)

// TestEnumerateQuick pins the per-PR tier's shape: at least the 24
// cells the acceptance gate counts, every protocol family and every
// chaos plan represented, no duplicate names.
func TestEnumerateQuick(t *testing.T) {
	cells := Enumerate(TierQuick)
	if len(cells) < 24 {
		t.Fatalf("quick tier has %d cells, want >= 24", len(cells))
	}
	seen := make(map[string]bool)
	protos := make(map[string]bool)
	chaos := make(map[string]bool)
	for _, c := range cells {
		name := c.Name()
		if seen[name] {
			t.Errorf("duplicate cell %s", name)
		}
		seen[name] = true
		protos[c.Proto] = true
		chaos[c.Chaos] = true
	}
	for _, p := range []string{"alpha", "beta", "gamma"} {
		if !protos[p] {
			t.Errorf("quick tier misses protocol %s", p)
		}
	}
	for _, ch := range []string{"none", "loss", "burst", "crash"} {
		if !chaos[ch] {
			t.Errorf("quick tier misses chaos plan %s", ch)
		}
	}
}

// TestEnumerateFull: the nightly tier covers both transports, the
// 1k-session rows and the 10k scale probes, and strictly extends quick.
func TestEnumerateFull(t *testing.T) {
	full := Enumerate(TierFull)
	if len(full) <= len(Enumerate(TierQuick)) {
		t.Fatalf("full tier (%d cells) not larger than quick", len(full))
	}
	var udp, s1k, s10k int
	for _, c := range full {
		if c.Transport == "udp" {
			udp++
		}
		if c.Sessions == 1000 {
			s1k++
		}
		if c.Sessions == 10000 {
			s10k++
		}
	}
	if udp == 0 || s1k == 0 || s10k == 0 {
		t.Fatalf("full tier: udp=%d, 1k-session=%d, 10k-session=%d cells, want all > 0", udp, s1k, s10k)
	}
}

// TestCellNames pins the naming scheme Compare joins on.
func TestCellNames(t *testing.T) {
	got := Cell{Proto: "beta", K: 4, Transport: "mem", Chaos: "loss", Sessions: 64}.Name()
	if got != "beta4/mem/loss/s64" {
		t.Errorf("Name() = %q, want beta4/mem/loss/s64", got)
	}
	if got := (Cell{Proto: "alpha", Transport: "udp", Chaos: "none", Sessions: 1}).Name(); got != "alpha/udp/none/s1" {
		t.Errorf("alpha Name() = %q", got)
	}
}

// TestFilter: substring tokens select cells; an expression matching
// nothing is an error, never a silently empty matrix.
func TestFilter(t *testing.T) {
	cells := Enumerate(TierQuick)
	got, err := Filter(cells, "beta4/mem, udp")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range got {
		name := c.Name()
		if !strings.Contains(name, "beta4/mem") && !strings.Contains(name, "udp") {
			t.Errorf("filter kept %s", name)
		}
	}
	if len(got) == 0 || len(got) == len(cells) {
		t.Errorf("filter kept %d of %d cells, want a proper subset", len(got), len(cells))
	}
	if all, err := Filter(cells, ""); err != nil || len(all) != len(cells) {
		t.Errorf("empty filter = %d cells, err %v; want all %d", len(all), err, len(cells))
	}
	if _, err := Filter(cells, "nosuchcell"); err == nil {
		t.Error("filter matching nothing did not error")
	}
}

// TestCellSeedStability: a cell's seed depends only on the base seed
// and its own name — filtering or reordering neighbours cannot shift a
// cell's workload.
func TestCellSeedStability(t *testing.T) {
	c := Cell{Proto: "beta", K: 4, Transport: "mem", Chaos: "none", Sessions: 64}
	if cellSeed(1, c) != cellSeed(1, c) {
		t.Error("cellSeed not stable")
	}
	if cellSeed(1, c) == cellSeed(2, c) {
		t.Error("cellSeed ignores the base seed")
	}
	other := Cell{Proto: "beta", K: 4, Transport: "mem", Chaos: "loss", Sessions: 64}
	if cellSeed(1, c) == cellSeed(1, other) {
		t.Error("distinct cells share a seed")
	}
	if cellSeed(1, c) < 0 {
		t.Error("cellSeed negative (rand.NewSource would take abs, colliding seeds)")
	}
}
