// Package rstpx implements the generalisations the paper's conclusion
// (Section 7) proposes as future work:
//
//   - the delay bound d is replaced by a delivery window [d1, d2]: every
//     packet arrives at least d1 and at most d2 ticks after it is sent;
//   - each process has its own step bounds: the transmitter steps every
//     tc1..tc2 ticks and the receiver every rc1..rc2 ticks.
//
// The interesting consequence: what the channel can scramble is governed
// by the *slack* d2 - d1, not by d2. Two packets sent Δt apart can arrive
// out of order only if Δt < d2 - d1, so
//
//   - the reordering window shrinks to w* = max(1, ⌈(d2-d1)/tc1⌉)
//     transmitter steps (w* = δ1 when d1 = 0 and tc1 = c1 — the paper's
//     case), which generalises the Theorem 5.3 lower bound to
//     w*·tc2 / log2 ζ_k(w*);
//   - the burst protocol only needs to separate bursts by the slack, not
//     by d2: with a deterministic-delay channel (d1 = d2) bursts need no
//     wait at all and the effort approaches tc2/log2 μ_k(B) per message.
//
// The package provides the generalised parameters, bounds, and the
// generalised r-passive burst protocol GenBeta (the active A^γ(k) needs
// no generalisation for safety — it is ack-clocked — so only its bound
// changes; see GenGammaUpperBound).
package rstpx

import (
	"fmt"
)

// GenParams carries the Section 7 generalised timing constants, in ticks.
type GenParams struct {
	// TC1, TC2 bound the transmitter's inter-step time.
	TC1, TC2 int64
	// RC1, RC2 bound the receiver's inter-step time.
	RC1, RC2 int64
	// D1, D2 bound each packet's delivery delay: d1 <= delay <= d2.
	D1, D2 int64
}

// Validate checks 0 < tc1 <= tc2, 0 < rc1 <= rc2, 0 <= d1 <= d2 and
// tc2 < d2 (the paper's c2 < d, which keeps δ2 >= 1).
func (p GenParams) Validate() error {
	if p.TC1 < 1 || p.TC2 < p.TC1 {
		return fmt.Errorf("rstpx: need 0 < tc1 <= tc2, got tc1=%d tc2=%d", p.TC1, p.TC2)
	}
	if p.RC1 < 1 || p.RC2 < p.RC1 {
		return fmt.Errorf("rstpx: need 0 < rc1 <= rc2, got rc1=%d rc2=%d", p.RC1, p.RC2)
	}
	if p.D1 < 0 || p.D2 < p.D1 {
		return fmt.Errorf("rstpx: need 0 <= d1 <= d2, got d1=%d d2=%d", p.D1, p.D2)
	}
	if p.D2 <= p.TC2 {
		return fmt.Errorf("rstpx: need tc2 < d2, got tc2=%d d2=%d", p.TC2, p.D2)
	}
	return nil
}

// Slack returns the reordering slack d2 - d1: the only quantity the
// channel's nondeterminism can exploit.
func (p GenParams) Slack() int64 { return p.D2 - p.D1 }

// WindowSteps returns w*: the largest number of consecutive transmitter
// steps (at the fastest pace tc1) whose packets the channel can deliver in
// an arbitrary order. Packets sent Δt apart reorder only when Δt < slack,
// so w* = ⌈slack/tc1⌉, and at least 1 (a packet is always alone in its own
// window).
func (p GenParams) WindowSteps() int {
	if p.Slack() <= 0 {
		return 1
	}
	w := int((p.Slack() + p.TC1 - 1) / p.TC1)
	if w < 1 {
		w = 1
	}
	return w
}

// WaitSteps returns the number of idle transmitter steps GenBeta inserts
// between bursts so that consecutive bursts cannot interleave: the gap
// between the last send of one burst and the first send of the next is
// (WaitSteps+1)·tc1 > slack, hence the next burst's earliest arrival
// (send + d1) falls at or after every previous arrival (send' + d2).
// With d1 = 0 this is ⌈d2/tc1⌉ — the base protocol's wait.
func (p GenParams) WaitSteps() int {
	if p.Slack() <= 0 {
		return 0
	}
	return int((p.Slack() + p.TC1 - 1) / p.TC1)
}

// GenDelta1 returns the generalised δ1 = ⌊d2/tc1⌋ (the base model's δ1
// when d1 = 0); used by the paper-analogous default burst size.
func (p GenParams) GenDelta1() int { return int(p.D2 / p.TC1) }

// GenDelta2 returns the generalised δ2 = ⌊d2/tc2⌋.
func (p GenParams) GenDelta2() int { return int(p.D2 / p.TC2) }

// Base lifts classic RSTP parameters into the generalised model
// (d1 = 0, both processes sharing the same clock bounds).
func Base(c1, c2, d int64) GenParams {
	return GenParams{TC1: c1, TC2: c2, RC1: c1, RC2: c2, D1: 0, D2: d}
}

// String renders the parameters.
func (p GenParams) String() string {
	return fmt.Sprintf("t[%d,%d] r[%d,%d] d[%d,%d] (slack=%d w*=%d)",
		p.TC1, p.TC2, p.RC1, p.RC2, p.D1, p.D2, p.Slack(), p.WindowSteps())
}
