package rstpx

import (
	"testing"

	"repro/internal/chanmodel"
	"repro/internal/rstp"
	"repro/internal/sim"
	"repro/internal/timed"
	"repro/internal/wire"
)

func TestGenAlphaEffortFormula(t *testing.T) {
	// Base model: matches the classical formula.
	base := Base(2, 3, 12)
	if got, want := GenAlphaEffort(base), rstp.AlphaEffort(rstp.Params{C1: 2, C2: 3, D: 12}); got != want {
		t.Errorf("base GenAlphaEffort = %g, classic = %g", got, want)
	}
	// Deterministic delay: one message per step.
	det := GenParams{TC1: 2, TC2: 3, RC1: 2, RC2: 3, D1: 12, D2: 12}
	if got := GenAlphaEffort(det); got != 3 {
		t.Errorf("deterministic GenAlphaEffort = %g, want tc2 = 3", got)
	}
}

func runGenAlpha(t *testing.T, p GenParams, xs string, delay chanmodel.DelayPolicy) *sim.Run {
	t.Helper()
	x, err := wire.ParseBits(xs)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := NewGenAlphaTransmitter(p, x)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := rstp.NewAlphaReceiver(rstp.Params{C1: p.RC1, C2: p.RC2, D: p.D2})
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.Simulate(sim.Config{
		C1: p.TC1, C2: p.TC2, D: p.D2,
		Transmitter: sim.Process{Auto: tr, Policy: sim.FixedGap{C: p.TC1}},
		Receiver:    sim.Process{Auto: rc, Policy: sim.FixedGap{C: p.RC1}},
		Delay:       delay,
		Stop:        sim.StopAfterWrites(len(x)),
		MaxTicks:    1_000_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wire.BitsToString(run.Writes()) != xs {
		t.Fatalf("Y = %s, want %s", wire.BitsToString(run.Writes()), xs)
	}
	return run
}

// TestGenAlphaCorrectAcrossWindows: correctness holds for the full window
// grid, including zero slack where it streams back to back.
func TestGenAlphaCorrectAcrossWindows(t *testing.T) {
	grids := []GenParams{
		Base(2, 3, 12),
		{TC1: 2, TC2: 3, RC1: 2, RC2: 3, D1: 8, D2: 12},
		{TC1: 2, TC2: 3, RC1: 2, RC2: 3, D1: 12, D2: 12},
	}
	for _, p := range grids {
		for _, delay := range []chanmodel.DelayPolicy{
			chanmodel.FixedDelay{Delay: p.D1},
			chanmodel.FixedDelay{Delay: p.D2},
		} {
			run := runGenAlpha(t, p, "10110", delay)
			if v := timed.DelayWindow(run.Trace, p.D1, p.D2, true); len(v) != 0 {
				t.Fatalf("%v: %v", p, v[0])
			}
		}
	}
}

// TestGenAlphaStreamsAtZeroSlack: with d1 = d2 the transmitter never
// waits — one send per step.
func TestGenAlphaStreamsAtZeroSlack(t *testing.T) {
	p := GenParams{TC1: 2, TC2: 3, RC1: 2, RC2: 3, D1: 12, D2: 12}
	run := runGenAlpha(t, p, "1011", chanmodel.FixedDelay{Delay: 12})
	for _, e := range run.Trace {
		if e.Actor == "t" && e.Action.Kind() == "wait_t" {
			t.Fatal("zero-slack GenAlpha waited")
		}
	}
}

// TestGenAlphaTimedModelCheck: exhaustively safe on a small windowed
// instance, via its Fork/Snapshot support.
func TestGenAlphaForkSnapshot(t *testing.T) {
	p := GenParams{TC1: 1, TC2: 1, RC1: 1, RC2: 1, D1: 1, D2: 3}
	x, _ := wire.ParseBits("10")
	tr, err := NewGenAlphaTransmitter(p, x)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := tr.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Snapshot() != tr.Snapshot() {
		t.Fatal("fork changed state")
	}
	act, ok := cp.NextLocal()
	if !ok {
		t.Fatal("no action")
	}
	if err := cp.Apply(act); err != nil {
		t.Fatal(err)
	}
	if cp.Snapshot() == tr.Snapshot() {
		t.Fatal("fork shares state")
	}
	if tr.Done() {
		t.Fatal("fresh transmitter cannot be done")
	}
}

func TestGenAlphaValidation(t *testing.T) {
	if _, err := NewGenAlphaTransmitter(GenParams{}, nil); err == nil {
		t.Error("invalid params should fail")
	}
	if _, err := NewGenAlphaTransmitter(Base(1, 1, 2), []wire.Bit{9}); err == nil {
		t.Error("invalid bit should fail")
	}
}
