package rstpx

import (
	"fmt"

	"repro/internal/chanmodel"
	"repro/internal/sim"
	"repro/internal/timed"
	"repro/internal/wire"
)

// GenSolution bundles GenBeta's protocol pair with its parameters.
type GenSolution struct {
	// Params are the generalised timing constants.
	Params GenParams
	// K is the packet alphabet size.
	K int
	// Burst is the packets-per-burst parameter.
	Burst int
	// BlockBits is the input bits carried per burst.
	BlockBits int
}

// NewGenBeta builds the generalised r-passive solution with the default
// burst; NewGenBetaBurst chooses the burst explicitly.
func NewGenBeta(p GenParams, k int) (GenSolution, error) {
	return NewGenBetaBurst(p, k, DefaultBurst(p))
}

// NewGenBetaBurst builds the generalised r-passive solution with an
// explicit burst size.
func NewGenBetaBurst(p GenParams, k, burst int) (GenSolution, error) {
	codec, err := genCodec(p, k, burst)
	if err != nil {
		return GenSolution{}, err
	}
	return GenSolution{Params: p, K: k, Burst: burst, BlockBits: codec.BlockBits()}, nil
}

// String renders the solution name.
func (s GenSolution) String() string {
	return fmt.Sprintf("genbeta(k=%d,b=%d)", s.K, s.Burst)
}

// GenRunOptions select the schedules of one generalised run; zero values
// default to the worst case (both processes slowest, delay pinned at d2).
type GenRunOptions struct {
	// TPolicy and RPolicy schedule the two processes.
	TPolicy, RPolicy sim.StepPolicy
	// Delay is the channel adversary; it must respect [d1, d2].
	Delay chanmodel.DelayPolicy
	// MaxTicks and MaxEvents cap the run.
	MaxTicks  int64
	MaxEvents int
}

// Run executes the solution on x until all messages are written.
func (s GenSolution) Run(x []wire.Bit, opt GenRunOptions) (*sim.Run, error) {
	if opt.TPolicy == nil {
		opt.TPolicy = sim.FixedGap{C: s.Params.TC2}
	}
	if opt.RPolicy == nil {
		opt.RPolicy = sim.FixedGap{C: s.Params.RC2}
	}
	if opt.Delay == nil {
		opt.Delay = chanmodel.FixedDelay{Delay: s.Params.D2}
	}
	t, err := NewGenBetaTransmitter(s.Params, s.K, s.Burst, x)
	if err != nil {
		return nil, err
	}
	r, err := NewGenBetaReceiver(s.Params, s.K, s.Burst)
	if err != nil {
		return nil, err
	}
	run, err := sim.Simulate(sim.Config{
		C1:          s.Params.TC1,
		C2:          s.Params.TC2,
		D:           s.Params.D2,
		Transmitter: sim.Process{Auto: t, Policy: opt.TPolicy},
		Receiver:    sim.Process{Auto: r, Policy: opt.RPolicy},
		Delay:       opt.Delay,
		Stop:        sim.StopAfterWrites(len(x)),
		MaxTicks:    opt.MaxTicks,
		MaxEvents:   opt.MaxEvents,
	})
	if err != nil {
		return run, fmt.Errorf("rstpx: %s run: %w", s, err)
	}
	return run, nil
}

// Verify checks the generalised good(A): per-process step bounds, the
// delivery window [d1, d2], and Y = X.
func (s GenSolution) Verify(run *sim.Run, x []wire.Bit) []timed.Violation {
	var out []timed.Violation
	out = append(out, timed.Timing(run.Trace)...)
	out = append(out, timed.StepBounds(run.Trace, "t", s.Params.TC1, s.Params.TC2)...)
	out = append(out, timed.StepBounds(run.Trace, "r", s.Params.RC1, s.Params.RC2)...)
	out = append(out, timed.DelayWindow(run.Trace, s.Params.D1, s.Params.D2, true)...)
	out = append(out, timed.PrefixInvariant(run.Trace, x, true)...)
	return out
}

// MeasureEffort runs on x and reports t(last-send)/|x| after verifying.
func (s GenSolution) MeasureEffort(x []wire.Bit, opt GenRunOptions) (float64, error) {
	run, err := s.Run(x, opt)
	if err != nil {
		return 0, err
	}
	if v := s.Verify(run, x); len(v) > 0 {
		return 0, fmt.Errorf("rstpx: %s run not good: %v (and %d more)", s, v[0], len(v)-1)
	}
	last, ok := run.LastSendTime()
	if !ok {
		return 0, fmt.Errorf("rstpx: %s run sent nothing", s)
	}
	return float64(last) / float64(len(x)), nil
}
