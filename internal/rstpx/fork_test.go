package rstpx

import (
	"strings"
	"testing"

	"repro/internal/ioa"
	"repro/internal/wire"
)

// TestGenBetaForkSnapshotIndependence exercises the state-space-exploration
// surface of the generalised automata directly.
func TestGenBetaForkSnapshotIndependence(t *testing.T) {
	p := Base(2, 3, 12)
	k, burst := 4, 6
	bits := GenBetaBlockBits(k, burst)
	x := make([]wire.Bit, bits)
	x[0] = wire.One
	tr, err := NewGenBetaTransmitter(p, k, burst, x)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Done() {
		t.Fatal("fresh transmitter cannot be done")
	}
	cp, err := tr.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Snapshot() != tr.Snapshot() {
		t.Fatal("fork changed state")
	}
	act, ok := cp.NextLocal()
	if !ok {
		t.Fatal("no local action")
	}
	if cp.Classify(act) != ioa.ClassOutput {
		t.Fatalf("send classified as %v", cp.Classify(act))
	}
	if !cp.DeterministicIOA() {
		t.Fatal("must be deterministic")
	}
	if err := cp.Apply(act); err != nil {
		t.Fatal(err)
	}
	if cp.Snapshot() == tr.Snapshot() {
		t.Fatal("fork shares state with original")
	}

	rc, err := NewGenBetaReceiver(p, k, burst)
	if err != nil {
		t.Fatal(err)
	}
	if !rc.DeterministicIOA() || rc.Written() != 0 {
		t.Fatal("fresh receiver state wrong")
	}
	rcp, err := rc.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if rcp.Snapshot() != rc.Snapshot() {
		t.Fatal("receiver fork changed state")
	}
	if err := rcp.Apply(wire.Recv{Dir: wire.TtoR, P: wire.DataPacket(0)}); err != nil {
		t.Fatal(err)
	}
	if rcp.Snapshot() == rc.Snapshot() {
		t.Fatal("receiver fork shares state")
	}
	if rc.Classify(wire.Write{M: 0}) != ioa.ClassOutput {
		t.Fatal("write should be receiver output")
	}
	if len(rcp.WrittenBits()) != 0 {
		t.Fatal("nothing written yet")
	}
}

func TestGenStringForms(t *testing.T) {
	p := GenParams{TC1: 2, TC2: 3, RC1: 2, RC2: 4, D1: 6, D2: 12}
	s := p.String()
	for _, want := range []string{"t[2,3]", "r[2,4]", "d[6,12]", "slack=6"} {
		if !strings.Contains(s, want) {
			t.Errorf("GenParams.String = %q missing %q", s, want)
		}
	}
	sol, err := NewGenBeta(Base(2, 3, 12), 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := sol.String(); got != "genbeta(k=4,b=6)" {
		t.Errorf("GenSolution.String = %q", got)
	}
}

// TestOrderedReceiverSurface exercises the ordered receiver's remaining
// automaton plumbing.
func TestOrderedReceiverSurface(t *testing.T) {
	p := Base(2, 3, 12)
	rc, err := NewOrderedBetaReceiver(p, 4, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !rc.DeterministicIOA() || rc.Written() != 0 || rc.Name() != "r" {
		t.Fatal("fresh ordered receiver state wrong")
	}
	if rc.Classify(wire.Recv{Dir: wire.TtoR, P: wire.DataPacket(1)}) != ioa.ClassInput {
		t.Fatal("data recv should be input")
	}
	if rc.Classify(wire.Recv{Dir: wire.TtoR, P: wire.DataPacket(9)}) != ioa.ClassNone {
		t.Fatal("out-of-alphabet packet should be outside the signature")
	}
	if rc.Classify(wire.Write{M: 1}) != ioa.ClassOutput {
		t.Fatal("write should be output")
	}
	// Deliver one full in-order burst encoding the zero block.
	bits := OrderedBlockBits(4, 3)
	block := make([]wire.Bit, bits)
	seq, err := EncodeOrdered(4, 3, block)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range seq {
		if err := rc.Apply(wire.Recv{Dir: wire.TtoR, P: wire.DataPacket(s)}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < bits; i++ {
		act, ok := rc.NextLocal()
		if !ok || act.Kind() != wire.KindWrite {
			t.Fatalf("expected write, got %v", act)
		}
		if err := rc.Apply(act); err != nil {
			t.Fatal(err)
		}
	}
	if rc.Written() != bits {
		t.Fatalf("written = %d, want %d", rc.Written(), bits)
	}
	if rc.DetectedCorruption() {
		t.Fatal("clean burst flagged as corrupt")
	}
}

// TestGenAlphaClassifySurface rounds out the GenAlpha automaton plumbing.
func TestGenAlphaClassifySurface(t *testing.T) {
	p := Base(2, 3, 12)
	tr, err := NewGenAlphaTransmitter(p, []wire.Bit{1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Name() != "t" || !tr.DeterministicIOA() {
		t.Fatal("basic surface wrong")
	}
	if tr.Classify(wire.Send{Dir: wire.TtoR, P: wire.DataPacket(1)}) != ioa.ClassOutput {
		t.Fatal("send should be output")
	}
	if tr.Classify(wire.Internal{Name: "wait_t"}) != ioa.ClassInternal {
		t.Fatal("wait_t should be internal")
	}
	if tr.Classify(wire.Write{M: 1}) != ioa.ClassNone {
		t.Fatal("write is not a transmitter action")
	}
}
