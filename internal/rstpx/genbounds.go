package rstpx

import (
	"math"

	"repro/internal/multiset"
)

// Generalised effort bounds. Setting d1 = 0 and tc = rc = c recovers the
// paper's formulas exactly.

// GenPassiveLowerBound generalises Theorem 5.3: in fast executions the
// channel can scramble only windows of w* = ⌈(d2-d1)/tc1⌉ transmitter
// steps, so any r-passive solution needs at least n/log2 ζ_k(w*) windows
// for n messages, each window costing up to w*·tc2 ticks:
//
//	eff >= w*·tc2 / log2 ζ_k(w*).
//
// As d1 -> d2 the window collapses to a single step and the bound tends to
// tc2/log2 k — the cost of a perfect (order-preserving) channel.
func GenPassiveLowerBound(p GenParams, k int) float64 {
	w := p.WindowSteps()
	denom := multiset.Log2Zeta(k, w)
	if denom <= 0 {
		return math.Inf(1)
	}
	return float64(int64(w)*p.TC2) / denom
}

// GenBetaUpperBound is the generalised Lemma 6.1 ceiling for GenBeta with
// the given burst: each round is burst + WaitSteps transmitter steps of at
// most tc2 ticks, carrying ⌊log2 μ_k(burst)⌋ bits.
func GenBetaUpperBound(p GenParams, k, burst int) float64 {
	bits := GenBetaBlockBits(k, burst)
	if bits <= 0 {
		return math.Inf(1)
	}
	round := int64(burst+p.WaitSteps()) * p.TC2
	return float64(round) / float64(bits)
}

// GenGammaUpperBound generalises the Section 6.2 analysis to the window
// model and per-process clocks, charging the full adversarial ack queue:
// a burst of δ2 = ⌊d2/tc2⌋ packets is sent within δ2·tc2 <= d2, all arrive
// within a further d2, the receiver needs up to δ2 steps of rc2 to ack
// them all, and the last ack travels up to d2 more:
//
//	eff <= (δ2·tc2 + 2·d2 + δ2·rc2) / ⌊log2 μ_k(δ2)⌋.
//
// With tc = rc = c2 and δ2·c2 <= d this is at most (4d + c2)-ish — one d
// more than the paper's 3d + c2, which implicitly assumes acknowledgements
// never queue (true under evenly spaced arrivals, not under batching
// adversaries; see the E5/E10 notes in EXPERIMENTS.md).
func GenGammaUpperBound(p GenParams, k int) float64 {
	d2 := p.GenDelta2()
	bits := multiset.BlockBits(k, d2)
	if bits <= 0 {
		return math.Inf(1)
	}
	block := int64(d2)*p.TC2 + 2*p.D2 + int64(d2)*p.RC2
	return float64(block) / float64(bits)
}
