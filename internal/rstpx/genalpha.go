package rstpx

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/wire"
)

// GenAlpha is A^α lifted to the Section 7 window model: one message per
// packet, consecutive sends separated by enough steps to cover the
// reordering slack d2 - d1 (not all of d2). On a deterministic-delay
// channel it degenerates to streaming one message per step.
//
// Round length: sends recur every r = max(1, ⌈slack/tc1⌉) steps, so the
// inter-send time is at least r·tc1 >= slack even at the fastest pace
// (ties resolved by send order, as everywhere in this repository). At
// d1 = 0 this is the classical ⌈d/c1⌉; at d1 = d2 it is one step.
//
// Effort: r · tc2 per message — ⌈d/c1⌉·c2 at d1 = 0, tc2 at d1 = d2.

// GenAlphaRoundSteps returns r, the steps per message round.
func GenAlphaRoundSteps(p GenParams) int {
	if p.Slack() <= 0 {
		return 1
	}
	r := int((p.Slack() + p.TC1 - 1) / p.TC1)
	if r < 1 {
		r = 1
	}
	return r
}

// GenAlphaEffort returns the generalised simple-protocol effort.
func GenAlphaEffort(p GenParams) float64 {
	return float64(int64(GenAlphaRoundSteps(p)) * p.TC2)
}

// GenAlphaTransmitter sends one message then waits WaitSteps steps.
type GenAlphaTransmitter struct {
	m *ioa.Machine

	x []wire.Bit
	i int
	j int
	s int // steps per round: WaitSteps + 1
}

var _ ioa.Deterministic = (*GenAlphaTransmitter)(nil)

// NewGenAlphaTransmitter builds the generalised simple transmitter.
func NewGenAlphaTransmitter(p GenParams, x []wire.Bit) (*GenAlphaTransmitter, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	for idx, b := range x {
		if !b.Valid() {
			return nil, fmt.Errorf("rstpx: genalpha transmitter: invalid bit at %d", idx)
		}
	}
	t := &GenAlphaTransmitter{
		x: append([]wire.Bit(nil), x...),
		s: GenAlphaRoundSteps(p),
	}
	if err := t.initMachine(); err != nil {
		return nil, err
	}
	return t, nil
}

func (t *GenAlphaTransmitter) initMachine() error {
	m, err := ioa.NewMachine("t", t.classify, nil, []ioa.Command{
		{
			Name:  "send",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return t.j == 0 && t.i < len(t.x) },
			Act: func() ioa.Action {
				return wire.Send{Dir: wire.TtoR, P: wire.DataPacket(wire.Symbol(t.x[t.i]))}
			},
			Eff: func() {
				if t.s == 1 {
					t.i++ // streaming: no wait at all
					return
				}
				t.j = 1
			},
		},
		{
			Name:  "wait_t",
			Class: ioa.ClassInternal,
			Pre:   func() bool { return t.j > 0 },
			Act:   func() ioa.Action { return wire.Internal{Name: "wait_t"} },
			Eff: func() {
				t.j++
				if t.j == t.s {
					t.i++
					t.j = 0
				}
			},
		},
	})
	if err != nil {
		return err
	}
	t.m = m
	return nil
}

func (t *GenAlphaTransmitter) classify(a ioa.Action) ioa.Class {
	switch act := a.(type) {
	case wire.Send:
		if act.Dir == wire.TtoR && act.P.Kind == wire.Data {
			return ioa.ClassOutput
		}
	case wire.Internal:
		if act.Name == "wait_t" {
			return ioa.ClassInternal
		}
	}
	return ioa.ClassNone
}

// Name returns "t".
func (t *GenAlphaTransmitter) Name() string { return t.m.Name() }

// Classify places an action in the signature.
func (t *GenAlphaTransmitter) Classify(a ioa.Action) ioa.Class { return t.m.Classify(a) }

// NextLocal returns the unique enabled local action.
func (t *GenAlphaTransmitter) NextLocal() (ioa.Action, bool) { return t.m.NextLocal() }

// Apply performs a transition.
func (t *GenAlphaTransmitter) Apply(a ioa.Action) error { return t.m.Apply(a) }

// DeterministicIOA marks the automaton deterministic.
func (t *GenAlphaTransmitter) DeterministicIOA() bool { return true }

// Done reports whether every message was sent and waited out.
func (t *GenAlphaTransmitter) Done() bool { return t.i >= len(t.x) && t.j == 0 }

// Fork returns an independent deep copy, for state-space exploration.
func (t *GenAlphaTransmitter) Fork() (*GenAlphaTransmitter, error) {
	c := &GenAlphaTransmitter{x: t.x, i: t.i, j: t.j, s: t.s}
	if err := c.initMachine(); err != nil {
		return nil, err
	}
	return c, nil
}

// Snapshot returns a canonical key of the mutable state.
func (t *GenAlphaTransmitter) Snapshot() string { return fmt.Sprintf("i=%d j=%d", t.i, t.j) }
