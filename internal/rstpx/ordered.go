package rstpx

import (
	"fmt"
	"math/big"

	"repro/internal/ioa"
	"repro/internal/multiset"
	"repro/internal/wire"
)

// OrderedBetaReceiver is the ablation of A^β's central design choice: it
// decodes each burst from the *sequence* of arrivals instead of the
// multiset, interpreting the burst as base-k digits (most significant
// first). Pairing it with an OrderedBetaTransmitter yields a protocol
// that carries burst·log2(k) bits per burst — more than the multiset
// code — but whose correctness depends on in-burst arrival order, which
// Δ(C(P)) does NOT guarantee: the reverse-burst adversary corrupts it
// while leaving A^β untouched. (This is precisely the gap between the
// paper's lower bound — multisets are all the receiver can trust — and a
// naive sequence code.)
type OrderedBetaReceiver struct {
	m *ioa.Machine

	k      int
	burst  int
	bits   int
	cur    []wire.Symbol
	queue  []wire.Bit
	next   int
	broken bool // set when a burst decodes to a non-codeword
}

var _ ioa.Deterministic = (*OrderedBetaReceiver)(nil)

// OrderedBlockBits returns ⌊burst·log2 k⌋ computed exactly: the number of
// bits the ordered (sequence) code carries per burst.
func OrderedBlockBits(k, burst int) int {
	kn := new(big.Int).Exp(big.NewInt(int64(k)), big.NewInt(int64(burst)), nil)
	return kn.BitLen() - 1
}

// NewOrderedBetaReceiver builds the order-dependent receiver.
func NewOrderedBetaReceiver(p GenParams, k, burst int) (*OrderedBetaReceiver, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if k < 2 || burst < 1 {
		return nil, fmt.Errorf("rstpx: ordered receiver needs k >= 2 and burst >= 1")
	}
	r := &OrderedBetaReceiver{
		k:     k,
		burst: burst,
		bits:  OrderedBlockBits(k, burst),
	}
	m, err := ioa.NewMachine("r", r.classify, r.onInput, []ioa.Command{
		{
			Name:  "write",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return r.next < len(r.queue) },
			Act:   func() ioa.Action { return wire.Write{M: r.queue[r.next]} },
			Eff:   func() { r.next++ },
		},
		{
			Name:  "idle_r",
			Class: ioa.ClassInternal,
			Pre:   func() bool { return true },
			Act:   func() ioa.Action { return wire.Internal{Name: "idle_r"} },
			Eff:   func() {},
		},
	})
	if err != nil {
		return nil, err
	}
	r.m = m
	return r, nil
}

func (r *OrderedBetaReceiver) classify(a ioa.Action) ioa.Class {
	switch act := a.(type) {
	case wire.Recv:
		if act.Dir == wire.TtoR && act.P.Kind == wire.Data &&
			act.P.Symbol >= 0 && int(act.P.Symbol) < r.k {
			return ioa.ClassInput
		}
	case wire.Write:
		return ioa.ClassOutput
	case wire.Internal:
		if act.Name == "idle_r" {
			return ioa.ClassInternal
		}
	}
	return ioa.ClassNone
}

func (r *OrderedBetaReceiver) onInput(act ioa.Action) error {
	recv, ok := act.(wire.Recv)
	if !ok {
		return fmt.Errorf("rstpx: ordered receiver: unexpected input %v: %w", act, ioa.ErrNotInSignature)
	}
	r.cur = append(r.cur, recv.P.Symbol)
	if len(r.cur) == r.burst {
		bits, err := DecodeOrdered(r.k, r.bits, r.cur)
		if err != nil {
			// A sequence outside the encodable range: the order code has
			// no redundancy to detect most scrambles, but this one it can.
			r.broken = true
		} else {
			r.queue = append(r.queue, bits...)
		}
		r.cur = nil
	}
	return nil
}

// Name returns "r".
func (r *OrderedBetaReceiver) Name() string { return r.m.Name() }

// Classify places an action in the signature.
func (r *OrderedBetaReceiver) Classify(a ioa.Action) ioa.Class { return r.m.Classify(a) }

// NextLocal returns the unique enabled local action.
func (r *OrderedBetaReceiver) NextLocal() (ioa.Action, bool) { return r.m.NextLocal() }

// Apply performs a transition.
func (r *OrderedBetaReceiver) Apply(a ioa.Action) error { return r.m.Apply(a) }

// DeterministicIOA marks the automaton deterministic.
func (r *OrderedBetaReceiver) DeterministicIOA() bool { return true }

// Written returns the number of bits written.
func (r *OrderedBetaReceiver) Written() int { return r.next }

// DetectedCorruption reports whether some burst failed to decode.
func (r *OrderedBetaReceiver) DetectedCorruption() bool { return r.broken }

// EncodeOrdered maps a block of bits (MSB first) to the base-k digit
// sequence of its value, most significant digit first, length = burst.
func EncodeOrdered(k, burst int, block []wire.Bit) ([]wire.Symbol, error) {
	bits := OrderedBlockBits(k, burst)
	if len(block) != bits {
		return nil, fmt.Errorf("rstpx: ordered encode wants %d bits, got %d", bits, len(block))
	}
	v := new(big.Int)
	for _, b := range block {
		v.Lsh(v, 1)
		if b == wire.One {
			v.SetBit(v, 0, 1)
		}
	}
	out := make([]wire.Symbol, burst)
	kk := big.NewInt(int64(k))
	rem := new(big.Int)
	for i := burst - 1; i >= 0; i-- {
		v.QuoRem(v, kk, rem)
		out[i] = wire.Symbol(rem.Int64())
	}
	return out, nil
}

// DecodeOrdered inverts EncodeOrdered, rejecting values outside 2^bits.
func DecodeOrdered(k, bits int, seq []wire.Symbol) ([]wire.Bit, error) {
	v := new(big.Int)
	kk := big.NewInt(int64(k))
	for _, s := range seq {
		if s < 0 || int(s) >= k {
			return nil, fmt.Errorf("rstpx: ordered decode: symbol %d outside alphabet", int(s))
		}
		v.Mul(v, kk)
		v.Add(v, big.NewInt(int64(s)))
	}
	limit := new(big.Int).Lsh(big.NewInt(1), uint(bits))
	if v.Cmp(limit) >= 0 {
		return nil, fmt.Errorf("rstpx: ordered decode: value %v >= 2^%d (not a codeword)", v, bits)
	}
	out := make([]wire.Bit, bits)
	for i := 0; i < bits; i++ {
		if v.Bit(bits-1-i) == 1 {
			out[i] = wire.One
		}
	}
	return out, nil
}

// OrderedBetaTransmitter sends blocks through the ordered (sequence)
// code, with the same burst/wait cadence as GenBeta.
type OrderedBetaTransmitter struct {
	m *ioa.Machine

	blocks [][]wire.Symbol
	bi     int
	c      int
	burst  int
	wait   int
}

var _ ioa.Deterministic = (*OrderedBetaTransmitter)(nil)

// NewOrderedBetaTransmitter builds the order-code transmitter; len(x)
// must be a multiple of OrderedBlockBits(k, burst).
func NewOrderedBetaTransmitter(p GenParams, k, burst int, x []wire.Bit) (*OrderedBetaTransmitter, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if k < 2 || burst < 1 {
		return nil, fmt.Errorf("rstpx: ordered transmitter needs k >= 2 and burst >= 1")
	}
	bits := OrderedBlockBits(k, burst)
	if len(x)%bits != 0 {
		return nil, fmt.Errorf("rstpx: |X| = %d not a multiple of block size %d", len(x), bits)
	}
	blocks := make([][]wire.Symbol, 0, len(x)/bits)
	for off := 0; off < len(x); off += bits {
		seq, err := EncodeOrdered(k, burst, x[off:off+bits])
		if err != nil {
			return nil, err
		}
		blocks = append(blocks, seq)
	}
	t := &OrderedBetaTransmitter{blocks: blocks, burst: burst, wait: p.WaitSteps()}
	m, err := ioa.NewMachine("t", t.classify, nil, []ioa.Command{
		{
			Name:  "send",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return t.bi < len(t.blocks) && t.c < t.burst },
			Act: func() ioa.Action {
				return wire.Send{Dir: wire.TtoR, P: wire.DataPacket(t.blocks[t.bi][t.c])}
			},
			Eff: func() {
				t.c++
				if t.c == t.burst && t.wait == 0 {
					t.c = 0
					t.bi++
				}
			},
		},
		{
			Name:  "wait_t",
			Class: ioa.ClassInternal,
			Pre:   func() bool { return t.bi < len(t.blocks) && t.c >= t.burst },
			Act:   func() ioa.Action { return wire.Internal{Name: "wait_t"} },
			Eff: func() {
				t.c++
				if t.c == t.burst+t.wait {
					t.c = 0
					t.bi++
				}
			},
		},
	})
	if err != nil {
		return nil, err
	}
	t.m = m
	return t, nil
}

func (t *OrderedBetaTransmitter) classify(a ioa.Action) ioa.Class {
	switch act := a.(type) {
	case wire.Send:
		if act.Dir == wire.TtoR && act.P.Kind == wire.Data {
			return ioa.ClassOutput
		}
	case wire.Internal:
		if act.Name == "wait_t" {
			return ioa.ClassInternal
		}
	}
	return ioa.ClassNone
}

// Name returns "t".
func (t *OrderedBetaTransmitter) Name() string { return t.m.Name() }

// Classify places an action in the signature.
func (t *OrderedBetaTransmitter) Classify(a ioa.Action) ioa.Class { return t.m.Classify(a) }

// NextLocal returns the unique enabled local action.
func (t *OrderedBetaTransmitter) NextLocal() (ioa.Action, bool) { return t.m.NextLocal() }

// Apply performs a transition.
func (t *OrderedBetaTransmitter) Apply(a ioa.Action) error { return t.m.Apply(a) }

// DeterministicIOA marks the automaton deterministic.
func (t *OrderedBetaTransmitter) DeterministicIOA() bool { return true }

// OrderedGain reports the payload advantage the ordered code would enjoy
// if order survived: OrderedBlockBits / multiset BlockBits for the same
// burst.
func OrderedGain(k, burst int) float64 {
	mb := multiset.BlockBits(k, burst)
	if mb == 0 {
		return 0
	}
	return float64(OrderedBlockBits(k, burst)) / float64(mb)
}
