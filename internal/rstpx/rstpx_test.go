package rstpx

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/chanmodel"
	"repro/internal/rstp"
	"repro/internal/sim"
	"repro/internal/wire"
)

func TestGenParamsValidate(t *testing.T) {
	tests := []struct {
		name    string
		p       GenParams
		wantErr string
	}{
		{name: "ok", p: GenParams{TC1: 1, TC2: 2, RC1: 1, RC2: 3, D1: 2, D2: 8}},
		{name: "ok deterministic delay", p: GenParams{TC1: 1, TC2: 2, RC1: 1, RC2: 2, D1: 5, D2: 5}},
		{name: "tc order", p: GenParams{TC1: 3, TC2: 2, RC1: 1, RC2: 2, D1: 0, D2: 8}, wantErr: "tc1 <= tc2"},
		{name: "rc order", p: GenParams{TC1: 1, TC2: 2, RC1: 0, RC2: 2, D1: 0, D2: 8}, wantErr: "rc1 <= rc2"},
		{name: "d order", p: GenParams{TC1: 1, TC2: 2, RC1: 1, RC2: 2, D1: 9, D2: 8}, wantErr: "d1 <= d2"},
		{name: "d2 too small", p: GenParams{TC1: 1, TC2: 4, RC1: 1, RC2: 2, D1: 0, D2: 4}, wantErr: "tc2 < d2"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := tt.p.Validate()
			if tt.wantErr == "" {
				if err != nil {
					t.Fatalf("Validate() = %v", err)
				}
				return
			}
			if err == nil || !strings.Contains(err.Error(), tt.wantErr) {
				t.Fatalf("Validate() = %v, want %q", err, tt.wantErr)
			}
		})
	}
}

func TestWindowAndWaitSteps(t *testing.T) {
	tests := []struct {
		p            GenParams
		slack        int64
		window, wait int
	}{
		// Base model: d1 = 0 -> slack = d2, matches ⌈d/c1⌉.
		{p: Base(2, 3, 12), slack: 12, window: 6, wait: 6},
		{p: Base(2, 5, 11), slack: 11, window: 6, wait: 6},
		// Narrow window: slack 4 over tc1 = 2 -> 2-step windows.
		{p: GenParams{TC1: 2, TC2: 3, RC1: 2, RC2: 3, D1: 8, D2: 12}, slack: 4, window: 2, wait: 2},
		// Deterministic delay: no reordering at all.
		{p: GenParams{TC1: 2, TC2: 3, RC1: 2, RC2: 3, D1: 12, D2: 12}, slack: 0, window: 1, wait: 0},
	}
	for _, tt := range tests {
		if got := tt.p.Slack(); got != tt.slack {
			t.Errorf("%v Slack = %d, want %d", tt.p, got, tt.slack)
		}
		if got := tt.p.WindowSteps(); got != tt.window {
			t.Errorf("%v WindowSteps = %d, want %d", tt.p, got, tt.window)
		}
		if got := tt.p.WaitSteps(); got != tt.wait {
			t.Errorf("%v WaitSteps = %d, want %d", tt.p, got, tt.wait)
		}
	}
}

// TestBaseMatchesClassicModel: with d1 = 0 and shared clocks, the
// generalised bounds coincide with the paper's.
func TestBaseMatchesClassicModel(t *testing.T) {
	c1, c2, dd := int64(2), int64(3), int64(12)
	gp := Base(c1, c2, dd)
	cp := rstp.Params{C1: c1, C2: c2, D: dd}
	for _, k := range []int{2, 4, 16} {
		if got, want := GenPassiveLowerBound(gp, k), rstp.PassiveLowerBound(cp, k); math.Abs(got-want) > 1e-9 {
			t.Errorf("k=%d: gen passive LB %g != classic %g", k, got, want)
		}
		if got, want := GenBetaUpperBound(gp, k, gp.GenDelta1()), rstp.BetaUpperBound(cp, k); math.Abs(got-want) > 1e-9 {
			t.Errorf("k=%d: gen beta UB %g != classic %g", k, got, want)
		}
	}
	if gp.GenDelta1() != cp.Delta1() || gp.GenDelta2() != cp.Delta2() {
		t.Error("generalised deltas disagree with classic")
	}
}

func genInput(s GenSolution, blocks int, seed int64) []wire.Bit {
	rng := rand.New(rand.NewSource(seed))
	return wire.RandomBits(blocks*s.BlockBits, rng.Uint64)
}

// TestGenBetaCorrectAcrossWindows: GenBeta delivers X under every legal
// window channel, for several slack regimes including zero.
func TestGenBetaCorrectAcrossWindows(t *testing.T) {
	paramGrid := []GenParams{
		Base(2, 3, 12),
		{TC1: 2, TC2: 3, RC1: 2, RC2: 3, D1: 8, D2: 12},  // narrow slack
		{TC1: 2, TC2: 3, RC1: 2, RC2: 3, D1: 12, D2: 12}, // deterministic
		{TC1: 1, TC2: 2, RC1: 3, RC2: 5, D1: 3, D2: 9},   // asymmetric clocks
	}
	for _, p := range paramGrid {
		for _, k := range []int{2, 8} {
			s, err := NewGenBeta(p, k)
			if err != nil {
				t.Fatalf("%v k=%d: %v", p, k, err)
			}
			x := genInput(s, 6, 11)
			rng := rand.New(rand.NewSource(13))
			delays := []chanmodel.DelayPolicy{
				chanmodel.FixedDelay{Delay: p.D1},
				chanmodel.FixedDelay{Delay: p.D2},
				&chanmodel.UniformWindow{D1: p.D1, D2: p.D2, Rand: rng},
			}
			schedules := []sim.StepPolicy{
				sim.FixedGap{C: p.TC1},
				sim.FixedGap{C: p.TC2},
			}
			for _, delay := range delays {
				for _, sched := range schedules {
					rsched := sim.FixedGap{C: p.RC1}
					run, err := s.Run(x, GenRunOptions{TPolicy: sched, RPolicy: rsched, Delay: delay})
					if err != nil {
						t.Fatalf("%s %v %s: %v", s, p, delay.Name(), err)
					}
					if wire.BitsToString(run.Writes()) != wire.BitsToString(x) {
						t.Fatalf("%s %v %s: Y != X", s, p, delay.Name())
					}
					if v := s.Verify(run, x); len(v) != 0 {
						t.Fatalf("%s %v %s: %v", s, p, delay.Name(), v[0])
					}
				}
			}
		}
	}
}

// TestGenBetaSurvivesWindowReordering: an adversary that reverses arrival
// order within the slack window cannot corrupt the multiset decoding.
func TestGenBetaSurvivesWindowReordering(t *testing.T) {
	p := GenParams{TC1: 2, TC2: 3, RC1: 2, RC2: 3, D1: 6, D2: 12}
	s, err := NewGenBeta(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := genInput(s, 8, 17)
	// Alternate delays d1/d2 within each burst: adjacent packets swap.
	delay := chanmodel.Func{
		Label: "window-swapper",
		F: func(dirSeq int64, sendTime int64, _ wire.Dir, _ wire.Packet) []int64 {
			if dirSeq%2 == 0 {
				return []int64{sendTime + p.D2}
			}
			return []int64{sendTime + p.D1}
		},
	}
	run, err := s.Run(x, GenRunOptions{
		TPolicy: sim.FixedGap{C: p.TC1},
		RPolicy: sim.FixedGap{C: p.RC1},
		Delay:   delay,
	})
	if err != nil {
		t.Fatal(err)
	}
	if wire.BitsToString(run.Writes()) != wire.BitsToString(x) {
		t.Fatal("window reordering corrupted the stream")
	}
	if v := s.Verify(run, x); len(v) != 0 {
		t.Fatalf("not good: %v", v[0])
	}
}

// TestDeterministicDelayNoWait: with d1 = d2 the transmitter never waits —
// every local step is a send.
func TestDeterministicDelayNoWait(t *testing.T) {
	p := GenParams{TC1: 2, TC2: 3, RC1: 2, RC2: 3, D1: 12, D2: 12}
	s, err := NewGenBeta(p, 4)
	if err != nil {
		t.Fatal(err)
	}
	x := genInput(s, 5, 23)
	run, err := s.Run(x, GenRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range run.Trace {
		if e.Actor == "t" && e.Action.Kind() == "wait_t" {
			t.Fatal("transmitter waited despite zero slack")
		}
	}
	if wire.BitsToString(run.Writes()) != wire.BitsToString(x) {
		t.Fatal("Y != X")
	}
}

// TestEffortImprovesAsWindowShrinks is the headline result of the
// extension: fixing d2 and raising d1 (shrinking the slack) strictly
// reduces both the generalised lower bound and the measured effort.
func TestEffortImprovesAsWindowShrinks(t *testing.T) {
	k := 4
	var prevLB, prevMeas float64 = math.Inf(1), math.Inf(1)
	for _, d1 := range []int64{0, 6, 10, 12} {
		p := GenParams{TC1: 2, TC2: 3, RC1: 2, RC2: 3, D1: d1, D2: 12}
		lb := GenPassiveLowerBound(p, k)
		if lb > prevLB+1e-9 {
			t.Errorf("d1=%d: lower bound rose to %.3f from %.3f", d1, lb, prevLB)
		}
		prevLB = lb
		s, err := NewGenBeta(p, k)
		if err != nil {
			t.Fatal(err)
		}
		x := genInput(s, 40, 29)
		meas, err := s.MeasureEffort(x, GenRunOptions{})
		if err != nil {
			t.Fatalf("d1=%d: %v", d1, err)
		}
		if meas > prevMeas+1e-9 {
			t.Errorf("d1=%d: measured effort rose to %.3f from %.3f", d1, meas, prevMeas)
		}
		if ub := GenBetaUpperBound(p, k, s.Burst); meas > ub+1e-9 {
			t.Errorf("d1=%d: measured %.3f above bound %.3f", d1, meas, ub)
		}
		prevMeas = meas
	}
}

// TestAsymmetricClocksOnlySlowReceiverWrites: with a much slower receiver
// the r-passive protocol's transmission effort is unchanged (the receiver
// never gates the channel), demonstrating the per-process extension.
func TestAsymmetricClocksOnlySlowReceiverWrites(t *testing.T) {
	fast := GenParams{TC1: 2, TC2: 3, RC1: 2, RC2: 3, D1: 0, D2: 12}
	slowR := GenParams{TC1: 2, TC2: 3, RC1: 8, RC2: 16, D1: 0, D2: 12}
	k := 4
	sFast, err := NewGenBeta(fast, k)
	if err != nil {
		t.Fatal(err)
	}
	sSlow, err := NewGenBetaBurst(slowR, k, sFast.Burst)
	if err != nil {
		t.Fatal(err)
	}
	x := genInput(sFast, 20, 31)
	eFast, err := sFast.MeasureEffort(x, GenRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	eSlow, err := sSlow.MeasureEffort(x, GenRunOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(eFast-eSlow) > 1e-9 {
		t.Errorf("r-passive transmission effort changed with receiver speed: %.3f vs %.3f", eFast, eSlow)
	}
}

func TestGenConstructorsValidate(t *testing.T) {
	p := Base(2, 3, 12)
	if _, err := NewGenBetaBurst(p, 1, 4); err == nil {
		t.Error("k = 1 should fail")
	}
	if _, err := NewGenBetaBurst(p, 4, 0); err == nil {
		t.Error("burst = 0 should fail")
	}
	if _, err := NewGenBetaTransmitter(p, 4, 6, make([]wire.Bit, 1)); err == nil {
		t.Error("misaligned input should fail")
	}
	bad := GenParams{TC1: 0, TC2: 1, RC1: 1, RC2: 1, D1: 0, D2: 3}
	if _, err := NewGenBeta(bad, 4); err == nil {
		t.Error("invalid params should fail")
	}
}

func TestDefaultBurst(t *testing.T) {
	// Base model: default burst equals δ1.
	if b := DefaultBurst(Base(2, 3, 12)); b != 6 {
		t.Errorf("base default burst = %d, want 6", b)
	}
	// Deterministic delay: small constant burst.
	det := GenParams{TC1: 2, TC2: 3, RC1: 2, RC2: 3, D1: 12, D2: 12}
	if b := DefaultBurst(det); b != 8 {
		t.Errorf("deterministic default burst = %d, want 8", b)
	}
	// Narrow slack: still at least the window and at least δ1.
	nar := GenParams{TC1: 2, TC2: 3, RC1: 2, RC2: 3, D1: 8, D2: 12}
	if b := DefaultBurst(nar); b < nar.WindowSteps() {
		t.Errorf("default burst %d below window %d", b, nar.WindowSteps())
	}
}

func TestGenGammaUpperBoundSanity(t *testing.T) {
	// Base case compares against the classic 3d+c2 bound: the generalised
	// bound is the conservative one (it charges ack queueing), so it must
	// be at least the classic value.
	gp := Base(2, 3, 12)
	cp := rstp.Params{C1: 2, C2: 3, D: 12}
	for _, k := range []int{2, 4, 16} {
		gen := GenGammaUpperBound(gp, k)
		classic := rstp.GammaUpperBound(cp, k)
		if gen < classic {
			t.Errorf("k=%d: generalised gamma bound %.3f below classic %.3f", k, gen, classic)
		}
	}
	if !math.IsInf(GenGammaUpperBound(gp, 1), 1) {
		t.Error("k=1 should be +Inf")
	}
}
