package rstpx

import (
	"fmt"

	"repro/internal/ioa"
	"repro/internal/multiset"
	"repro/internal/wire"
)

// GenBeta is the generalised r-passive burst protocol: bursts of Burst
// k-ary packets encoding ⌊log2 μ_k(Burst)⌋ bits as a multiset, separated
// by WaitSteps idle steps — just enough to cover the reordering slack
// d2 - d1 rather than all of d2. With a deterministic-delay channel
// (d1 = d2) the wait vanishes entirely and the transmitter streams bursts
// back to back.
//
// The burst size is a free parameter of the generalised protocol
// (correctness never depends on it); DefaultBurst picks the
// paper-analogous value.

// DefaultBurst returns the paper-analogous burst size: the reordering
// window w*, but never smaller than the generalised δ1 when there is no
// slack advantage to exploit. Concretely: max(w*, 1) when slack > 0
// matches the paper's δ1 at d1 = 0, and a small constant burst (8) when
// the channel is deterministic, to amortise per-burst overhead.
func DefaultBurst(p GenParams) int {
	if p.Validate() != nil {
		return 1 // invalid parameters fail properly in the constructor
	}
	if p.Slack() <= 0 {
		return 8
	}
	b := p.GenDelta1()
	if w := p.WindowSteps(); w > b {
		b = w
	}
	if b < 1 {
		b = 1
	}
	return b
}

// GenBetaBlockBits returns ⌊log2 μ_k(burst)⌋ for the generalised protocol.
func GenBetaBlockBits(k, burst int) int { return multiset.BlockBits(k, burst) }

// GenBetaTransmitter is the generalised burst transmitter.
type GenBetaTransmitter struct {
	m *ioa.Machine

	blocks [][]wire.Symbol
	bi     int
	c      int
	burst  int
	wait   int
}

var _ ioa.Deterministic = (*GenBetaTransmitter)(nil)

// NewGenBetaTransmitter builds the transmitter for input x with the given
// burst size; len(x) must be a multiple of GenBetaBlockBits(k, burst).
func NewGenBetaTransmitter(p GenParams, k, burst int, x []wire.Bit) (*GenBetaTransmitter, error) {
	codec, err := genCodec(p, k, burst)
	if err != nil {
		return nil, err
	}
	bits := codec.BlockBits()
	if len(x)%bits != 0 {
		return nil, fmt.Errorf("rstpx: |X| = %d not a multiple of block size %d", len(x), bits)
	}
	blocks := make([][]wire.Symbol, 0, len(x)/bits)
	for off := 0; off < len(x); off += bits {
		seq, err := codec.EncodeSeq(x[off : off+bits])
		if err != nil {
			return nil, fmt.Errorf("rstpx: block at bit %d: %w", off, err)
		}
		blocks = append(blocks, seq)
	}
	t := &GenBetaTransmitter{
		blocks: blocks,
		burst:  burst,
		wait:   p.WaitSteps(),
	}
	if err := t.initMachine(); err != nil {
		return nil, err
	}
	return t, nil
}

// initMachine (re)binds the guarded commands to this instance; Fork calls
// it on copies.
func (t *GenBetaTransmitter) initMachine() error {
	m, err := ioa.NewMachine("t", t.classify, nil, []ioa.Command{
		{
			Name:  "send",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return t.bi < len(t.blocks) && t.c < t.burst },
			Act: func() ioa.Action {
				return wire.Send{Dir: wire.TtoR, P: wire.DataPacket(t.blocks[t.bi][t.c])}
			},
			Eff: func() {
				t.c++
				// No wait configured: roll straight into the next block.
				if t.c == t.burst && t.wait == 0 {
					t.c = 0
					t.bi++
				}
			},
		},
		{
			Name:  "wait_t",
			Class: ioa.ClassInternal,
			Pre:   func() bool { return t.bi < len(t.blocks) && t.c >= t.burst },
			Act:   func() ioa.Action { return wire.Internal{Name: "wait_t"} },
			Eff: func() {
				t.c++
				if t.c == t.burst+t.wait {
					t.c = 0
					t.bi++
				}
			},
		},
	})
	if err != nil {
		return err
	}
	t.m = m
	return nil
}

// Fork returns an independent deep copy in the same state, for
// state-space exploration. The immutable encoded blocks are shared.
func (t *GenBetaTransmitter) Fork() (*GenBetaTransmitter, error) {
	c := &GenBetaTransmitter{
		blocks: t.blocks,
		bi:     t.bi,
		c:      t.c,
		burst:  t.burst,
		wait:   t.wait,
	}
	if err := c.initMachine(); err != nil {
		return nil, err
	}
	return c, nil
}

// Snapshot returns a canonical key of the mutable state.
func (t *GenBetaTransmitter) Snapshot() string { return fmt.Sprintf("bi=%d c=%d", t.bi, t.c) }

func genCodec(p GenParams, k, burst int) (*multiset.Codec, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if k < 2 {
		return nil, fmt.Errorf("rstpx: need k >= 2, got %d", k)
	}
	if burst < 1 {
		return nil, fmt.Errorf("rstpx: need burst >= 1, got %d", burst)
	}
	return multiset.NewCodec(k, burst)
}

func (t *GenBetaTransmitter) classify(a ioa.Action) ioa.Class {
	switch act := a.(type) {
	case wire.Send:
		if act.Dir == wire.TtoR && act.P.Kind == wire.Data {
			return ioa.ClassOutput
		}
	case wire.Internal:
		if act.Name == "wait_t" {
			return ioa.ClassInternal
		}
	}
	return ioa.ClassNone
}

// Name returns "t".
func (t *GenBetaTransmitter) Name() string { return t.m.Name() }

// Classify places an action in the signature.
func (t *GenBetaTransmitter) Classify(a ioa.Action) ioa.Class { return t.m.Classify(a) }

// NextLocal returns the unique enabled local action.
func (t *GenBetaTransmitter) NextLocal() (ioa.Action, bool) { return t.m.NextLocal() }

// Apply performs a transition.
func (t *GenBetaTransmitter) Apply(a ioa.Action) error { return t.m.Apply(a) }

// DeterministicIOA marks the automaton deterministic.
func (t *GenBetaTransmitter) DeterministicIOA() bool { return true }

// Done reports whether every block is sent and waited out.
func (t *GenBetaTransmitter) Done() bool { return t.bi >= len(t.blocks) }

// GenBetaReceiver is the generalised burst receiver; identical decoding
// logic, parameterised burst.
type GenBetaReceiver struct {
	m *ioa.Machine

	codec *multiset.Codec
	burst int
	k     int
	a     multiset.Multiset
	queue []wire.Bit
	next  int
}

var _ ioa.Deterministic = (*GenBetaReceiver)(nil)

// NewGenBetaReceiver builds the receiver.
func NewGenBetaReceiver(p GenParams, k, burst int) (*GenBetaReceiver, error) {
	codec, err := genCodec(p, k, burst)
	if err != nil {
		return nil, err
	}
	r := &GenBetaReceiver{
		codec: codec,
		burst: burst,
		k:     k,
		a:     multiset.New(k),
	}
	if err := r.initMachine(); err != nil {
		return nil, err
	}
	return r, nil
}

// initMachine (re)binds the guarded commands to this instance; Fork calls
// it on copies.
func (r *GenBetaReceiver) initMachine() error {
	m, err := ioa.NewMachine("r", r.classify, r.onInput, []ioa.Command{
		{
			Name:  "write",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return r.next < len(r.queue) },
			Act:   func() ioa.Action { return wire.Write{M: r.queue[r.next]} },
			Eff:   func() { r.next++ },
		},
		{
			Name:  "idle_r",
			Class: ioa.ClassInternal,
			Pre:   func() bool { return true },
			Act:   func() ioa.Action { return wire.Internal{Name: "idle_r"} },
			Eff:   func() {},
		},
	})
	if err != nil {
		return err
	}
	r.m = m
	return nil
}

// Fork returns an independent deep copy in the same state, for
// state-space exploration.
func (r *GenBetaReceiver) Fork() (*GenBetaReceiver, error) {
	c := &GenBetaReceiver{
		codec: r.codec,
		burst: r.burst,
		k:     r.k,
		a:     r.a.Clone(),
		queue: append([]wire.Bit(nil), r.queue...),
		next:  r.next,
	}
	if err := c.initMachine(); err != nil {
		return nil, err
	}
	return c, nil
}

// Snapshot returns a canonical key of the mutable state.
func (r *GenBetaReceiver) Snapshot() string {
	return fmt.Sprintf("A=%s q=%s next=%d", r.a.Key(), wire.BitsToString(r.queue), r.next)
}

// WrittenBits returns Y: the bits written so far, in order.
func (r *GenBetaReceiver) WrittenBits() []wire.Bit {
	return append([]wire.Bit(nil), r.queue[:r.next]...)
}

func (r *GenBetaReceiver) classify(a ioa.Action) ioa.Class {
	switch act := a.(type) {
	case wire.Recv:
		if act.Dir == wire.TtoR && act.P.Kind == wire.Data &&
			act.P.Symbol >= 0 && int(act.P.Symbol) < r.k {
			return ioa.ClassInput
		}
	case wire.Write:
		return ioa.ClassOutput
	case wire.Internal:
		if act.Name == "idle_r" {
			return ioa.ClassInternal
		}
	}
	return ioa.ClassNone
}

func (r *GenBetaReceiver) onInput(act ioa.Action) error {
	recv, ok := act.(wire.Recv)
	if !ok {
		return fmt.Errorf("rstpx: receiver: unexpected input %v: %w", act, ioa.ErrNotInSignature)
	}
	if err := r.a.Add(recv.P.Symbol); err != nil {
		return fmt.Errorf("rstpx: receiver: %w", err)
	}
	if r.a.Size() == r.burst {
		bits, err := r.codec.Decode(r.a)
		if err != nil {
			return fmt.Errorf("rstpx: receiver: decode burst: %w", err)
		}
		r.queue = append(r.queue, bits...)
		r.a.Clear()
	}
	return nil
}

// Name returns "r".
func (r *GenBetaReceiver) Name() string { return r.m.Name() }

// Classify places an action in the signature.
func (r *GenBetaReceiver) Classify(a ioa.Action) ioa.Class { return r.m.Classify(a) }

// NextLocal returns the unique enabled local action.
func (r *GenBetaReceiver) NextLocal() (ioa.Action, bool) { return r.m.NextLocal() }

// Apply performs a transition.
func (r *GenBetaReceiver) Apply(a ioa.Action) error { return r.m.Apply(a) }

// DeterministicIOA marks the automaton deterministic.
func (r *GenBetaReceiver) DeterministicIOA() bool { return true }

// Written returns the number of bits written.
func (r *GenBetaReceiver) Written() int { return r.next }
