package rstpx

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/chanmodel"
	"repro/internal/sim"
	"repro/internal/wire"
)

func TestOrderedBlockBits(t *testing.T) {
	tests := []struct {
		k, burst, want int
	}{
		{k: 2, burst: 6, want: 6},   // 2^6
		{k: 4, burst: 6, want: 12},  // 4^6 = 2^12
		{k: 3, burst: 4, want: 6},   // 81 -> 6
		{k: 16, burst: 3, want: 12}, // 16^3 = 2^12
	}
	for _, tt := range tests {
		if got := OrderedBlockBits(tt.k, tt.burst); got != tt.want {
			t.Errorf("OrderedBlockBits(%d,%d) = %d, want %d", tt.k, tt.burst, got, tt.want)
		}
	}
}

// TestOrderedCodeRoundTrip: encode∘decode = id, but ONLY in order.
func TestOrderedCodeRoundTrip(t *testing.T) {
	k, burst := 4, 6
	bits := OrderedBlockBits(k, burst)
	rng := rand.New(rand.NewSource(21))
	f := func() bool {
		block := wire.RandomBits(bits, rng.Uint64)
		seq, err := EncodeOrdered(k, burst, block)
		if err != nil || len(seq) != burst {
			return false
		}
		back, err := DecodeOrdered(k, bits, seq)
		if err != nil {
			return false
		}
		return wire.BitsToString(back) == wire.BitsToString(block)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestOrderedCodeIsOrderSensitive(t *testing.T) {
	k, burst := 4, 3
	bits := OrderedBlockBits(k, burst)
	block := make([]wire.Bit, bits)
	block[bits-1] = wire.One // value 1 -> digits 0,0,1
	seq, err := EncodeOrdered(k, burst, block)
	if err != nil {
		t.Fatal(err)
	}
	rev := []wire.Symbol{seq[2], seq[1], seq[0]} // 1,0,0 -> value 16
	back, err := DecodeOrdered(k, bits, rev)
	if err == nil && wire.BitsToString(back) == wire.BitsToString(block) {
		t.Fatal("reversal should change the decoded value")
	}
}

func TestOrderedGainExceedsOne(t *testing.T) {
	// The sequence code always carries at least as many bits as the
	// multiset code — that is the temptation the ablation kills.
	for _, k := range []int{2, 4, 16} {
		for _, burst := range []int{2, 6, 12} {
			if g := OrderedGain(k, burst); g < 1 {
				t.Errorf("OrderedGain(%d,%d) = %.2f < 1", k, burst, g)
			}
		}
	}
	if OrderedGain(4, 6) <= 1.5 {
		t.Errorf("k=4 burst=6 gain should be substantial, got %.2f", OrderedGain(4, 6))
	}
}

func runOrdered(t *testing.T, p GenParams, k, burst int, x []wire.Bit, delay chanmodel.DelayPolicy) (*sim.Run, *OrderedBetaReceiver) {
	t.Helper()
	tr, err := NewOrderedBetaTransmitter(p, k, burst, x)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := NewOrderedBetaReceiver(p, k, burst)
	if err != nil {
		t.Fatal(err)
	}
	run, err := sim.Simulate(sim.Config{
		C1: p.TC1, C2: p.TC2, D: p.D2,
		Transmitter: sim.Process{Auto: tr, Policy: sim.FixedGap{C: p.TC1}},
		Receiver:    sim.Process{Auto: rc, Policy: sim.FixedGap{C: p.RC1}},
		Delay:       delay,
		Stop:        sim.StopAfterWrites(len(x)),
		MaxTicks:    10_000_000,
	})
	if err != nil && run.WriteCount >= len(x) {
		t.Fatal(err)
	}
	return run, rc
}

// TestOrderedDecoderWorksInOrder: on an order-preserving channel the
// ablated protocol is fine — and carries more bits per burst.
func TestOrderedDecoderWorksInOrder(t *testing.T) {
	p := Base(2, 3, 12)
	k, burst := 4, 6
	bits := OrderedBlockBits(k, burst)
	rng := rand.New(rand.NewSource(33))
	x := wire.RandomBits(6*bits, rng.Uint64)
	run, _ := runOrdered(t, p, k, burst, x, chanmodel.FixedDelay{Delay: p.D2})
	if wire.BitsToString(run.Writes()) != wire.BitsToString(x) {
		t.Fatal("ordered decoder failed on an order-preserving channel")
	}
}

// TestOrderedDecoderBrokenByReversal is the ablation's point: the very
// same legal Δ(C) adversary that A^β provably survives corrupts the
// sequence decoder.
func TestOrderedDecoderBrokenByReversal(t *testing.T) {
	p := Base(2, 3, 12)
	k, burst := 4, p.GenDelta1()
	bits := OrderedBlockBits(k, burst)
	rng := rand.New(rand.NewSource(34))
	x := wire.RandomBits(6*bits, rng.Uint64)
	delay := chanmodel.ReverseBurst{D: p.D2, Burst: burst, StepGap: p.TC1}
	run, rc := runOrdered(t, p, k, burst, x, delay)
	if wire.BitsToString(run.Writes()) == wire.BitsToString(x) && !rc.DetectedCorruption() {
		t.Fatal("ordered decoder unexpectedly survived in-burst reversal")
	}
	// Meanwhile the multiset protocol under the same adversary is fine —
	// covered by TestGenBetaSurvivesWindowReordering and rstp's suite.
}

func TestOrderedConstructorValidation(t *testing.T) {
	p := Base(2, 3, 12)
	if _, err := NewOrderedBetaTransmitter(p, 1, 6, nil); err == nil {
		t.Error("k = 1 should fail")
	}
	if _, err := NewOrderedBetaTransmitter(p, 4, 6, make([]wire.Bit, 1)); err == nil {
		t.Error("misaligned input should fail")
	}
	if _, err := NewOrderedBetaReceiver(p, 4, 0); err == nil {
		t.Error("burst = 0 should fail")
	}
	if _, err := DecodeOrdered(4, 3, []wire.Symbol{9}); err == nil {
		t.Error("out-of-alphabet symbol should fail")
	}
	if _, err := EncodeOrdered(4, 3, make([]wire.Bit, 2)); err == nil {
		t.Error("wrong block size should fail")
	}
}
