package chanmodel

import (
	"testing"

	"repro/internal/wire"
)

// TestNilRandDefaults: the random policies built without a Rand source
// must fall back to a deterministic fixed-seed source instead of
// panicking — the regression that motivated the guard was a zero-value
// *LossyDup dereferencing a nil *rand.Rand on its first packet.
func TestNilRandDefaults(t *testing.T) {
	pkt := wire.DataPacket(1)
	policies := []DelayPolicy{
		&UniformRandom{D: 8},
		&LossyDup{D: 8, LossProb: 0.5, DupProb: 0.5},
		&FIFOLossyDup{D: 8, LossProb: 0.5, DupProb: 0.5},
		&Jitter{D: 8, Base: 3, Amp: 2},
		&UniformWindow{D1: 2, D2: 8},
	}
	for _, p := range policies {
		t.Run(p.Name(), func(t *testing.T) {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("nil-Rand policy panicked: %v", r)
				}
			}()
			for i := int64(0); i < 64; i++ {
				for _, at := range p.Arrivals(i, i*3, wire.TtoR, pkt) {
					if at < i*3 {
						t.Fatalf("arrival %d precedes send time %d", at, i*3)
					}
				}
			}
		})
	}
}

// TestNilRandDeterministic: two zero-value policies of the same shape
// produce identical arrival schedules — the fallback is a fixed seed, not
// global randomness.
func TestNilRandDeterministic(t *testing.T) {
	mk := func() DelayPolicy { return &LossyDup{D: 10, LossProb: 0.3, DupProb: 0.3} }
	a, b := mk(), mk()
	pkt := wire.DataPacket(0)
	for i := int64(0); i < 200; i++ {
		got, want := a.Arrivals(i, i, wire.TtoR, pkt), b.Arrivals(i, i, wire.TtoR, pkt)
		if len(got) != len(want) {
			t.Fatalf("packet %d: %d vs %d arrivals", i, len(got), len(want))
		}
		for j := range got {
			if got[j] != want[j] {
				t.Fatalf("packet %d arrival %d: %d vs %d", i, j, got[j], want[j])
			}
		}
	}
}
