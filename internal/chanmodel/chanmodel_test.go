package chanmodel

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/ioa"
	"repro/internal/wire"
)

func TestSimplePoliciesDelays(t *testing.T) {
	pkt := wire.DataPacket(1)
	tests := []struct {
		name   string
		policy DelayPolicy
		send   int64
		want   int64
	}{
		{name: "zero", policy: Zero{}, send: 10, want: 10},
		{name: "max", policy: MaxDelay{D: 7}, send: 10, want: 17},
		{name: "fixed", policy: FixedDelay{Delay: 3}, send: 10, want: 13},
		{name: "exceed", policy: ExceedBound{D: 7, Excess: 2}, send: 10, want: 19},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := tt.policy.Arrivals(0, tt.send, wire.TtoR, pkt)
			if len(got) != 1 || got[0] != tt.want {
				t.Errorf("%s.Arrivals = %v, want [%d]", tt.policy.Name(), got, tt.want)
			}
		})
	}
}

func TestUniformRandomWithinBound(t *testing.T) {
	u := &UniformRandom{D: 9, Rand: rand.New(rand.NewSource(1))}
	f := func(send uint16) bool {
		at := u.Arrivals(0, int64(send), wire.TtoR, wire.DataPacket(0))
		return len(at) == 1 && at[0] >= int64(send) && at[0] <= int64(send)+9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestReverseBurstReversesArrivals(t *testing.T) {
	// Burst of 4, step gap 2, bound 12: sends at 0,2,4,6 must arrive in
	// reverse order, all within d of their send.
	p := ReverseBurst{D: 12, Burst: 4, StepGap: 2}
	var arrivals []int64
	for j := int64(0); j < 4; j++ {
		send := 2 * j
		at := p.Arrivals(j, send, wire.TtoR, wire.DataPacket(0))
		if len(at) != 1 {
			t.Fatalf("one arrival expected, got %v", at)
		}
		if at[0] < send || at[0] > send+12 {
			t.Fatalf("arrival %d for send %d outside Δ bound", at[0], send)
		}
		arrivals = append(arrivals, at[0])
	}
	for i := 1; i < len(arrivals); i++ {
		if arrivals[i] >= arrivals[i-1] {
			t.Fatalf("arrivals not strictly reversed: %v", arrivals)
		}
	}
	// Acks go through untouched.
	if at := p.Arrivals(0, 5, wire.RtoT, wire.AckPacket()); at[0] != 5 {
		t.Errorf("r->t traffic delayed: %v", at)
	}
}

func TestReverseBurstClamp(t *testing.T) {
	// Bound too tight for full reversal: delays clamp to >= 0.
	p := ReverseBurst{D: 2, Burst: 4, StepGap: 2}
	for j := int64(0); j < 4; j++ {
		send := 2 * j
		at := p.Arrivals(j, send, wire.TtoR, wire.DataPacket(0))
		if at[0] < send || at[0] > send+2 {
			t.Fatalf("clamped arrival %d outside [send, send+d]", at[0])
		}
	}
}

func TestIntervalBatch(t *testing.T) {
	b := IntervalBatch{D: 5} // period 4
	if b.Period() != 4 {
		t.Fatalf("period = %d", b.Period())
	}
	tests := []struct {
		send, want int64
	}{
		{send: 0, want: 4},
		{send: 3, want: 4},
		{send: 4, want: 8},
		{send: 7, want: 8},
		{send: 8, want: 12},
	}
	for _, tt := range tests {
		at := b.Arrivals(0, tt.send, wire.TtoR, wire.DataPacket(0))
		if len(at) != 1 || at[0] != tt.want {
			t.Errorf("send %d -> %v, want %d", tt.send, at, tt.want)
		}
		if lag := at[0] - tt.send; lag < 1 || lag > 5 {
			t.Errorf("send %d: delay %d outside (0, d]", tt.send, lag)
		}
	}
}

func TestIntervalBatchDegenerate(t *testing.T) {
	b := IntervalBatch{D: 1} // period 0: degenerate, instant delivery
	if at := b.Arrivals(0, 3, wire.TtoR, wire.DataPacket(0)); at[0] != 3 {
		t.Errorf("degenerate batch: %v", at)
	}
}

func TestLossyDupStatistics(t *testing.T) {
	l := &LossyDup{D: 4, LossProb: 0.5, DupProb: 0.5, Rand: rand.New(rand.NewSource(5))}
	lost, dupd, single := 0, 0, 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		at := l.Arrivals(int64(i), 100, wire.TtoR, wire.DataPacket(0))
		switch len(at) {
		case 0:
			lost++
		case 1:
			single++
		case 2:
			dupd++
		default:
			t.Fatalf("unexpected arrivals %v", at)
		}
		for _, a := range at {
			if a < 100 || a > 104 {
				t.Fatalf("arrival %d outside bound", a)
			}
		}
	}
	if lost < trials/3 || lost > 2*trials/3 {
		t.Errorf("loss count %d implausible for p=0.5", lost)
	}
	if dupd == 0 || single == 0 {
		t.Errorf("expected both duplicates (%d) and singles (%d)", dupd, single)
	}
}

func TestFIFOLossyDupMonotone(t *testing.T) {
	l := &FIFOLossyDup{D: 9, LossProb: 0.3, DupProb: 0.3, Rand: rand.New(rand.NewSource(8))}
	last := map[wire.Dir]int64{}
	for i := int64(0); i < 500; i++ {
		dir := wire.TtoR
		if i%3 == 0 {
			dir = wire.RtoT
		}
		at := l.Arrivals(i, i, dir, wire.DataPacket(0))
		if len(at) == 0 {
			continue
		}
		if at[0] < last[dir] {
			t.Fatalf("direction %v reordered: %d after %d", dir, at[0], last[dir])
		}
		if len(at) == 2 && at[1] != at[0] {
			t.Fatalf("duplicate not back to back: %v", at)
		}
		last[dir] = at[0]
	}
}

func TestJitterWithinBound(t *testing.T) {
	j := &Jitter{D: 10, Base: 5, Amp: 7, Rand: rand.New(rand.NewSource(2))}
	for i := int64(0); i < 500; i++ {
		at := j.Arrivals(i, 100, wire.TtoR, wire.DataPacket(0))
		if len(at) != 1 || at[0] < 100 || at[0] > 110 {
			t.Fatalf("jitter arrival %v outside [100,110]", at)
		}
	}
	// Zero amplitude: deterministic base.
	j0 := &Jitter{D: 10, Base: 4, Rand: rand.New(rand.NewSource(2))}
	if at := j0.Arrivals(0, 100, wire.TtoR, wire.DataPacket(0)); at[0] != 104 {
		t.Errorf("zero-amp jitter = %v, want 104", at)
	}
}

func TestBurstyPhases(t *testing.T) {
	b := Bursty{D: 10, Lo: 1, Hi: 8, Period: 4}
	tests := []struct {
		send, want int64
	}{
		{send: 0, want: 1},  // phase 0: lo
		{send: 3, want: 4},  // still phase 0
		{send: 4, want: 12}, // phase 1: hi
		{send: 7, want: 15},
		{send: 8, want: 9}, // back to lo
	}
	for _, tt := range tests {
		at := b.Arrivals(0, tt.send, wire.TtoR, wire.DataPacket(0))
		if at[0] != tt.want {
			t.Errorf("send %d -> %v, want %d", tt.send, at, tt.want)
		}
	}
	// Hi above the bound is clamped.
	clamped := Bursty{D: 5, Lo: 1, Hi: 99, Period: 2}
	if at := clamped.Arrivals(0, 2, wire.TtoR, wire.DataPacket(0)); at[0] != 7 {
		t.Errorf("clamp: %v, want 7", at)
	}
}

func TestFuncPolicy(t *testing.T) {
	p := Func{Label: "x", F: func(dirSeq, sendTime int64, _ wire.Dir, _ wire.Packet) []int64 {
		return []int64{sendTime + dirSeq}
	}}
	if p.Name() != "x" {
		t.Error("name")
	}
	if at := p.Arrivals(3, 10, wire.TtoR, wire.DataPacket(0)); at[0] != 13 {
		t.Errorf("Arrivals = %v", at)
	}
}

func TestPolicyNamesNonEmpty(t *testing.T) {
	policies := []DelayPolicy{
		Zero{}, MaxDelay{D: 1}, FixedDelay{Delay: 1},
		&UniformRandom{D: 1, Rand: rand.New(rand.NewSource(1))},
		ReverseBurst{D: 1, Burst: 1, StepGap: 1}, IntervalBatch{D: 2},
		&LossyDup{D: 1, Rand: rand.New(rand.NewSource(1))},
		&FIFOLossyDup{D: 1, Rand: rand.New(rand.NewSource(1))},
		ExceedBound{D: 1, Excess: 1},
		&Jitter{D: 1, Rand: rand.New(rand.NewSource(1))},
		Bursty{D: 1, Period: 1},
		&UniformWindow{D1: 0, D2: 1, Rand: rand.New(rand.NewSource(1))},
	}
	for _, p := range policies {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

// TestUntimedChannelAutomaton exercises the ioa-level channel: sends
// enqueue, recvs must match in-flight packets, NextLocal is FIFO.
func TestUntimedChannelAutomaton(t *testing.T) {
	c := NewChannel("chan")
	if c.Name() != "chan" {
		t.Error("name")
	}
	s1 := wire.Send{Dir: wire.TtoR, P: wire.DataPacket(1)}
	s2 := wire.Send{Dir: wire.TtoR, P: wire.DataPacket(2)}
	if c.Classify(s1) != ioa.ClassInput {
		t.Error("send should be channel input")
	}
	if c.Classify(wire.Recv{Dir: wire.TtoR, P: wire.DataPacket(1)}) != ioa.ClassOutput {
		t.Error("recv should be channel output")
	}
	if c.Classify(wire.Write{M: 0}) != ioa.ClassNone {
		t.Error("write is outside the channel signature")
	}
	if _, ok := c.NextLocal(); ok {
		t.Error("empty channel should be quiescent")
	}
	if err := c.Apply(s1); err != nil {
		t.Fatal(err)
	}
	if err := c.Apply(s2); err != nil {
		t.Fatal(err)
	}
	if c.InFlight() != 2 {
		t.Fatalf("in flight = %d", c.InFlight())
	}
	// FIFO proposal.
	act, ok := c.NextLocal()
	if !ok || act.(wire.Recv).P.Symbol != 1 {
		t.Fatalf("NextLocal = %v", act)
	}
	// But any in-flight packet may be delivered (reordering allowed).
	if err := c.Apply(wire.Recv{Dir: wire.TtoR, P: wire.DataPacket(2)}); err != nil {
		t.Fatal(err)
	}
	if err := c.Apply(wire.Recv{Dir: wire.TtoR, P: wire.DataPacket(1)}); err != nil {
		t.Fatal(err)
	}
	// Nothing left: delivering again is not enabled.
	if err := c.Apply(wire.Recv{Dir: wire.TtoR, P: wire.DataPacket(1)}); err == nil {
		t.Error("recv without matching in-flight packet should fail")
	}
	// Unknown actions are rejected.
	if err := c.Apply(wire.Write{M: 1}); err == nil {
		t.Error("write should be rejected")
	}
}
