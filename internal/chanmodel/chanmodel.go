// Package chanmodel implements the paper's channel C(P) (Section 4):
// an automaton whose inputs are send(p) and outputs recv(p), with fair
// executions pairing every send with exactly one recv, no packet received
// before it is sent.
//
// Two realisations live here:
//
//   - Channel: an untimed I/O automaton usable in ioa compositions;
//   - DelayPolicy: the timed channel's adversary — it picks each packet's
//     delivery time, subject (for well-behaved policies) to the Δ(C(P))
//     bound of at most d ticks. Faulty policies (loss, duplication,
//     exceeding d) also live here, for the STP baseline and for fault
//     injection; the timed validators flag them.
package chanmodel

import (
	"fmt"
	"math/rand"

	"repro/internal/ioa"
	"repro/internal/wire"
)

// DelayPolicy decides when (and whether, and how many times) each sent
// packet arrives. It is consulted once per send event.
type DelayPolicy interface {
	// Name identifies the policy in experiment reports.
	Name() string
	// Arrivals returns the absolute arrival times for a packet sent at
	// sendTime. dirSeq counts packets per direction (0-based). An empty
	// result drops the packet; multiple entries duplicate it. Well-behaved
	// policies return exactly one time in [sendTime, sendTime+d].
	Arrivals(dirSeq int64, sendTime int64, dir wire.Dir, p wire.Packet) []int64
}

// Arrival is one delivery produced by a packet-mutating delay policy: an
// arrival time paired with the packet as delivered, which corruption
// faults may have altered from the packet that was sent.
type Arrival struct {
	// At is the absolute arrival time.
	At int64
	// P is the delivered packet.
	P wire.Packet
}

// Mutator is the optional DelayPolicy extension for fault injection:
// policies that can alter packets in flight (payload corruption) implement
// it, and the simulator prefers it over Arrivals when present. A Mutator's
// Arrivals and ArrivalsMut must describe the same delivery schedule.
type Mutator interface {
	DelayPolicy
	// ArrivalsMut is Arrivals with the delivered packets made explicit.
	ArrivalsMut(dirSeq int64, sendTime int64, dir wire.Dir, p wire.Packet) []Arrival
}

// defaultRand returns the fixed-seed source the random policies fall back
// to when built without one: a zero-value policy stays deterministic and
// usable instead of panicking on its first packet.
func defaultRand() *rand.Rand { return rand.New(rand.NewSource(1)) }

// Zero delivers every packet instantly (delay 0) — the fastest channel.
type Zero struct{}

var _ DelayPolicy = Zero{}

// Name returns "zero-delay".
func (Zero) Name() string { return "zero-delay" }

// Arrivals returns the send time itself.
func (Zero) Arrivals(_ int64, sendTime int64, _ wire.Dir, _ wire.Packet) []int64 {
	return []int64{sendTime}
}

// MaxDelay delays every packet by exactly d ticks — the slowest channel
// permitted by Δ(C(P)).
type MaxDelay struct {
	// D is the delay bound.
	D int64
}

var _ DelayPolicy = MaxDelay{}

// Name returns "max-delay".
func (m MaxDelay) Name() string { return fmt.Sprintf("max-delay(%d)", m.D) }

// Arrivals returns sendTime + D.
func (m MaxDelay) Arrivals(_ int64, sendTime int64, _ wire.Dir, _ wire.Packet) []int64 {
	return []int64{sendTime + m.D}
}

// FixedDelay delays every packet by a constant.
type FixedDelay struct {
	// Delay is the per-packet delay in ticks.
	Delay int64
}

var _ DelayPolicy = FixedDelay{}

// Name returns "fixed-delay(v)".
func (f FixedDelay) Name() string { return fmt.Sprintf("fixed-delay(%d)", f.Delay) }

// Arrivals returns sendTime + Delay.
func (f FixedDelay) Arrivals(_ int64, sendTime int64, _ wire.Dir, _ wire.Packet) []int64 {
	return []int64{sendTime + f.Delay}
}

// UniformRandom delays each packet independently and uniformly in [0, D].
type UniformRandom struct {
	// D is the delay bound.
	D int64
	// Rand is the randomness source.
	Rand *rand.Rand
}

var _ DelayPolicy = (*UniformRandom)(nil)

// Name returns "uniform-random".
func (u *UniformRandom) Name() string { return fmt.Sprintf("uniform-random(%d)", u.D) }

// Arrivals returns one uniformly delayed arrival.
func (u *UniformRandom) Arrivals(_ int64, sendTime int64, _ wire.Dir, _ wire.Packet) []int64 {
	if u.Rand == nil {
		u.Rand = defaultRand()
	}
	return []int64{sendTime + u.Rand.Int63n(u.D+1)}
}

// ReverseBurst reverses the arrival order of each burst of Burst
// consecutive same-direction packets, assuming the sender emits them
// StepGap ticks apart: packet j of a burst (j = 0..Burst-1) gets delay
// D - j*(StepGap+1), so arrivals are strictly decreasing across the burst.
// Delays are clamped at 0 (a clamped burst reverses only partially), and
// never exceed D. This is the adversary that breaks any in-burst
// order-dependent decoder while remaining a legal Δ(C(P)) channel — the
// multiset encoding of A^β/A^γ survives it by construction.
type ReverseBurst struct {
	// D is the delay bound.
	D int64
	// Burst is the number of packets per burst.
	Burst int
	// StepGap is the sender's inter-send gap in ticks.
	StepGap int64
}

var _ DelayPolicy = ReverseBurst{}

// Name returns "reverse-burst".
func (r ReverseBurst) Name() string {
	return fmt.Sprintf("reverse-burst(d=%d,b=%d,gap=%d)", r.D, r.Burst, r.StepGap)
}

// Arrivals reverses in-burst order for the t->r direction and delivers
// other traffic (acks) instantly.
func (r ReverseBurst) Arrivals(dirSeq int64, sendTime int64, dir wire.Dir, _ wire.Packet) []int64 {
	if dir != wire.TtoR || r.Burst <= 1 {
		return []int64{sendTime}
	}
	j := dirSeq % int64(r.Burst)
	delay := r.D - j*(r.StepGap+1)
	if delay < 0 {
		delay = 0
	}
	return []int64{sendTime + delay}
}

// IntervalBatch realises the Figure 2 adversary with ε = 1 tick: the
// timeline is cut into intervals t_i = [iP, (i+1)P) of length P = d - 1,
// and every packet sent during t_i is delivered at the start of t̂_{i+1},
// i.e. at tick (i+1)P, in send order. Delays are then within [1, d-1],
// so this is a legal Δ(C(P)) channel.
type IntervalBatch struct {
	// D is the delay bound; the interval length is D - 1.
	D int64
}

var _ DelayPolicy = IntervalBatch{}

// Name returns "interval-batch".
func (b IntervalBatch) Name() string { return fmt.Sprintf("interval-batch(d=%d)", b.D) }

// Period returns the interval length P = d - 1.
func (b IntervalBatch) Period() int64 { return b.D - 1 }

// Arrivals returns the batch boundary following the packet's interval.
func (b IntervalBatch) Arrivals(_ int64, sendTime int64, _ wire.Dir, _ wire.Packet) []int64 {
	p := b.Period()
	if p <= 0 {
		return []int64{sendTime}
	}
	i := sendTime / p
	return []int64{(i + 1) * p}
}

// Func adapts a closure as a delay policy, for scripted adversaries in
// tests and the lower-bound constructions.
type Func struct {
	// Label names the policy.
	Label string
	// F computes the arrivals.
	F func(dirSeq int64, sendTime int64, dir wire.Dir, p wire.Packet) []int64
}

var _ DelayPolicy = Func{}

// Name returns the label.
func (f Func) Name() string { return f.Label }

// Arrivals delegates to the closure.
func (f Func) Arrivals(dirSeq int64, sendTime int64, dir wire.Dir, p wire.Packet) []int64 {
	return f.F(dirSeq, sendTime, dir, p)
}

// LossyDup is the classical faulty channel of the paper's introduction:
// it loses packets with probability LossProb, duplicates survivors with
// probability DupProb, and delays each delivery uniformly in [0, D]. It is
// the substrate for the alternating-bit baseline (internal/stp); it is NOT
// a legal RSTP channel when LossProb > 0.
type LossyDup struct {
	// D bounds each delivery's delay (losses aside).
	D int64
	// LossProb is the probability a packet is lost outright.
	LossProb float64
	// DupProb is the probability a delivered packet is delivered twice.
	DupProb float64
	// Rand is the randomness source.
	Rand *rand.Rand
}

var _ DelayPolicy = (*LossyDup)(nil)

// Name returns "lossy-dup".
func (l *LossyDup) Name() string {
	return fmt.Sprintf("lossy-dup(loss=%.2f,dup=%.2f,d=%d)", l.LossProb, l.DupProb, l.D)
}

// Arrivals drops, delivers, or double-delivers the packet.
func (l *LossyDup) Arrivals(_ int64, sendTime int64, _ wire.Dir, _ wire.Packet) []int64 {
	if l.Rand == nil {
		l.Rand = defaultRand()
	}
	if l.Rand.Float64() < l.LossProb {
		return nil
	}
	out := []int64{sendTime + l.Rand.Int63n(l.D+1)}
	if l.Rand.Float64() < l.DupProb {
		out = append(out, sendTime+l.Rand.Int63n(l.D+1))
	}
	return out
}

// Jitter delays every packet by Base plus uniform noise in [-Amp, +Amp],
// clamped to [0, D] — a centred-latency channel, the common case between
// Zero and MaxDelay.
type Jitter struct {
	// D is the hard bound.
	D int64
	// Base is the typical delay.
	Base int64
	// Amp is the jitter amplitude.
	Amp int64
	// Rand is the randomness source.
	Rand *rand.Rand
}

var _ DelayPolicy = (*Jitter)(nil)

// Name returns "jitter".
func (j *Jitter) Name() string { return fmt.Sprintf("jitter(base=%d±%d,d=%d)", j.Base, j.Amp, j.D) }

// Arrivals returns one jittered arrival within [sendTime, sendTime+D].
func (j *Jitter) Arrivals(_ int64, sendTime int64, _ wire.Dir, _ wire.Packet) []int64 {
	if j.Rand == nil {
		j.Rand = defaultRand()
	}
	delay := j.Base
	if j.Amp > 0 {
		delay += j.Rand.Int63n(2*j.Amp+1) - j.Amp
	}
	if delay < 0 {
		delay = 0
	}
	if delay > j.D {
		delay = j.D
	}
	return []int64{sendTime + delay}
}

// Bursty alternates between a fast phase (delay Lo) and a congested phase
// (delay Hi <= D) every Period ticks of send time — a square-wave latency
// profile that stresses phase-dependent behaviour without violating Δ.
type Bursty struct {
	// D is the hard bound.
	D int64
	// Lo and Hi are the two phase delays.
	Lo, Hi int64
	// Period is the phase length in ticks.
	Period int64
}

var _ DelayPolicy = Bursty{}

// Name returns "bursty".
func (b Bursty) Name() string {
	return fmt.Sprintf("bursty(lo=%d,hi=%d,period=%d)", b.Lo, b.Hi, b.Period)
}

// Arrivals returns the phase-dependent arrival.
func (b Bursty) Arrivals(_ int64, sendTime int64, _ wire.Dir, _ wire.Packet) []int64 {
	delay := b.Lo
	if b.Period > 0 && (sendTime/b.Period)%2 == 1 {
		delay = b.Hi
	}
	if delay > b.D {
		delay = b.D
	}
	if delay < 0 {
		delay = 0
	}
	return []int64{sendTime + delay}
}

// UniformWindow delays each packet independently and uniformly in
// [D1, D2] — the Section 7 generalised channel with a delivery window.
type UniformWindow struct {
	// D1, D2 bound the delay.
	D1, D2 int64
	// Rand is the randomness source.
	Rand *rand.Rand
}

var _ DelayPolicy = (*UniformWindow)(nil)

// Name returns "uniform-window".
func (u *UniformWindow) Name() string { return fmt.Sprintf("uniform-window(%d,%d)", u.D1, u.D2) }

// Arrivals returns one arrival delayed uniformly within the window.
func (u *UniformWindow) Arrivals(_ int64, sendTime int64, _ wire.Dir, _ wire.Packet) []int64 {
	if u.Rand == nil {
		u.Rand = defaultRand()
	}
	if u.D2 <= u.D1 {
		return []int64{sendTime + u.D1}
	}
	return []int64{sendTime + u.D1 + u.Rand.Int63n(u.D2-u.D1+1)}
}

// FIFOLossyDup is LossyDup restricted to order-preserving delivery: it
// loses packets and duplicates survivors (duplicates arrive back to back),
// but never reorders — per direction, arrival times are monotone in send
// order. This is the channel class the Alternating Bit protocol is correct
// for ([BSW69]); with reordering added, STP over dup channels is
// unsolvable ([WZ89]), and internal/stp's tests exhibit the failure.
type FIFOLossyDup struct {
	// D bounds each delivery's extra delay.
	D int64
	// LossProb is the probability a packet is lost outright.
	LossProb float64
	// DupProb is the probability a delivered packet arrives twice.
	DupProb float64
	// Rand is the randomness source.
	Rand *rand.Rand

	last map[wire.Dir]int64
}

var _ DelayPolicy = (*FIFOLossyDup)(nil)

// Name returns "fifo-lossy-dup".
func (l *FIFOLossyDup) Name() string {
	return fmt.Sprintf("fifo-lossy-dup(loss=%.2f,dup=%.2f,d=%d)", l.LossProb, l.DupProb, l.D)
}

// Arrivals drops, delivers, or double-delivers the packet, clamping
// arrival times to be monotone per direction.
func (l *FIFOLossyDup) Arrivals(_ int64, sendTime int64, dir wire.Dir, _ wire.Packet) []int64 {
	if l.last == nil {
		l.last = make(map[wire.Dir]int64)
	}
	if l.Rand == nil {
		l.Rand = defaultRand()
	}
	if l.Rand.Float64() < l.LossProb {
		return nil
	}
	at := sendTime + l.Rand.Int63n(l.D+1)
	if prev, ok := l.last[dir]; ok && at < prev {
		at = prev
	}
	l.last[dir] = at
	out := []int64{at}
	if l.Rand.Float64() < l.DupProb {
		out = append(out, at) // duplicate arrives back to back
	}
	return out
}

// ExceedBound delivers every packet d + Excess ticks after it is sent —
// a channel that violates Δ(C(P)), used for fault injection: the timed
// validators must flag it, and A^β may misbehave on it while A^γ (whose
// safety is ack-clocked, not time-clocked) must not.
type ExceedBound struct {
	// D is the nominal bound being violated.
	D int64
	// Excess is how far past the bound deliveries land.
	Excess int64
}

var _ DelayPolicy = ExceedBound{}

// Name returns "exceed-bound".
func (e ExceedBound) Name() string { return fmt.Sprintf("exceed-bound(d=%d,+%d)", e.D, e.Excess) }

// Arrivals returns sendTime + D + Excess.
func (e ExceedBound) Arrivals(_ int64, sendTime int64, _ wire.Dir, _ wire.Packet) []int64 {
	return []int64{sendTime + e.D + e.Excess}
}

// Channel is the untimed channel automaton C(P) for ioa compositions. Its
// inputs are all send actions, its outputs all recv actions; a recv(p) is
// enabled whenever a matching packet is in flight. NextLocal delivers the
// oldest in-flight packet (FIFO), but Apply accepts any in-flight packet,
// so schedulers may reorder at will — matching the specification, which
// constrains only the send/recv bijection.
type Channel struct {
	name     string
	inFlight []wire.Send // pending sends in arrival-eligible order
}

var _ ioa.Automaton = (*Channel)(nil)

// NewChannel builds an empty untimed channel named name.
func NewChannel(name string) *Channel { return &Channel{name: name} }

// Name returns the channel's name.
func (c *Channel) Name() string { return c.name }

// InFlight returns the number of undelivered packets.
func (c *Channel) InFlight() int { return len(c.inFlight) }

// Classify marks sends as inputs and recvs as outputs.
func (c *Channel) Classify(a ioa.Action) ioa.Class {
	switch a.(type) {
	case wire.Send:
		return ioa.ClassInput
	case wire.Recv:
		return ioa.ClassOutput
	default:
		return ioa.ClassNone
	}
}

// NextLocal proposes delivery of the oldest in-flight packet.
func (c *Channel) NextLocal() (ioa.Action, bool) {
	if len(c.inFlight) == 0 {
		return nil, false
	}
	s := c.inFlight[0]
	return wire.Recv{Dir: s.Dir, P: s.P}, true
}

// Apply accepts sends (enqueue) and enabled recvs (dequeue a matching
// in-flight packet).
func (c *Channel) Apply(a ioa.Action) error {
	switch act := a.(type) {
	case wire.Send:
		c.inFlight = append(c.inFlight, act)
		return nil
	case wire.Recv:
		for i, s := range c.inFlight {
			if s.Dir == act.Dir && s.P == act.P {
				c.inFlight = append(c.inFlight[:i], c.inFlight[i+1:]...)
				return nil
			}
		}
		return fmt.Errorf("chanmodel: %v with no matching in-flight packet: %w", act, ioa.ErrNotEnabled)
	default:
		return fmt.Errorf("chanmodel: %v: %w", a, ioa.ErrNotInSignature)
	}
}
