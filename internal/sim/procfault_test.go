package sim

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/chanmodel"
)

// stubSchedule is a minimal ProcSchedule for engine tests (the canonical
// implementation lives in internal/faults; sim cannot import it).
type stubSchedule struct {
	events []ProcEvent
	scale  func(p ProcID, t int64) int64
	end    int64
}

func (s stubSchedule) Name() string        { return "stub" }
func (s stubSchedule) Events() []ProcEvent { return s.events }
func (s stubSchedule) End() int64          { return s.end }
func (s stubSchedule) GapScale(p ProcID, t int64) int64 {
	if s.scale == nil {
		return 1
	}
	return s.scale(p, t)
}

// TestProcCrashPausesPlainAutomaton: an automaton that implements neither
// crash interface freezes through the window — no steps, state intact —
// and resumes afterwards, so the run still completes.
func TestProcCrashPausesPlainAutomaton(t *testing.T) {
	run, err := Simulate(Config{
		C1: 2, C2: 2, D: 6,
		Transmitter: Process{Auto: newPinger(t, 5), Policy: FixedGap{C: 2}},
		Receiver:    Process{Auto: newEchoSink(t), Policy: FixedGap{C: 2}},
		Delay:       chanmodel.MaxDelay{D: 6},
		ProcFaults: stubSchedule{
			events: []ProcEvent{
				{At: 4, Proc: ProcTransmitter, Kind: ProcCrash},
				{At: 40, Proc: ProcTransmitter, Kind: ProcRestart},
			},
			end: 40,
		},
		Stop:     StopAfterWrites(5),
		MaxTicks: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	s := run.Stabilization
	if s == nil {
		t.Fatal("no Stabilization report on a run with ProcFaults")
	}
	if s.Crashes != 1 || s.Restarts != 1 || s.DownTicks[0] != 36 {
		t.Fatalf("crashes=%d restarts=%d downT=%d, want 1/1/36", s.Crashes, s.Restarts, s.DownTicks[0])
	}
	// No transmitter action may fall inside the crash window.
	for _, ev := range run.Trace {
		if ev.Actor == "t" && ev.Time >= 4 && ev.Time < 40 {
			t.Fatalf("transmitter acted at %d inside crash window [4,40)", ev.Time)
		}
	}
	if got := len(run.Writes()); got != 5 {
		t.Fatalf("writes = %d, want 5 after the pause", got)
	}
}

// TestProcCrashDiscardsDeliveries: packets delivered to a crashed process
// vanish at the process boundary — the channel watchdog still credits the
// delivery, the Stabilization report counts the loss.
func TestProcCrashDiscardsDeliveries(t *testing.T) {
	sink := newEchoSink(t)
	run, err := Simulate(Config{
		C1: 2, C2: 2, D: 6,
		Transmitter: Process{Auto: newPinger(t, 5), Policy: FixedGap{C: 2}},
		Receiver:    Process{Auto: sink, Policy: FixedGap{C: 2}},
		Delay:       chanmodel.MaxDelay{D: 6},
		ProcFaults: stubSchedule{
			events: []ProcEvent{{At: 0, Proc: ProcReceiver, Kind: ProcCrash}},
			end:    0,
		},
		Stop:     StopAfterWrites(5),
		MaxTicks: 100,
	})
	if err == nil {
		t.Fatal("run completed with the receiver down forever")
	}
	s := run.Stabilization
	if s.LostWhileDown != 5 {
		t.Fatalf("lost while down = %d, want all 5", s.LostWhileDown)
	}
	if sink.received != 0 {
		t.Fatalf("crashed receiver saw %d packets", sink.received)
	}
	if run.Degradation != nil && run.Degradation.Lost != 0 {
		t.Fatalf("watchdog blamed the channel for process loss: %v", run.Degradation)
	}
}

// crashRecorder is a Restartable + StateCorruptible wrapper around a
// plain automaton, recording the hook calls the engine makes.
type crashRecorder struct {
	*echoSink
	crashes, restarts []int64
	corrupted         int
}

func (c *crashRecorder) Crash(now int64)   { c.crashes = append(c.crashes, now) }
func (c *crashRecorder) Restart(now int64) { c.restarts = append(c.restarts, now) }
func (c *crashRecorder) CorruptState(r *rand.Rand) string {
	c.corrupted++
	return "flipped bit " + string(rune('0'+r.Intn(10)))
}

// TestProcFaultHooks: Restartable and StateCorruptible hooks fire at the
// scheduled ticks with the corrupt event of a restart tick first, and the
// corruption notes land in the report.
func TestProcFaultHooks(t *testing.T) {
	rec := &crashRecorder{echoSink: newEchoSink(t)}
	run, err := Simulate(Config{
		C1: 2, C2: 2, D: 6,
		Transmitter: Process{Auto: newPinger(t, 8), Policy: FixedGap{C: 2}},
		Receiver:    Process{Auto: rec, Policy: FixedGap{C: 2}},
		Delay:       chanmodel.MaxDelay{D: 6},
		ProcFaults: stubSchedule{
			events: []ProcEvent{
				{At: 10, Proc: ProcReceiver, Kind: ProcCrash},
				{At: 20, Proc: ProcReceiver, Kind: ProcCorrupt, Seed: 3},
				{At: 20, Proc: ProcReceiver, Kind: ProcRestart},
			},
			end: 20,
		},
		Stop: func(r *Run) bool { // run past the window; lost deliveries make a write count unreliable
			return len(r.Trace) > 0 && r.Trace[len(r.Trace)-1].Time >= 60
		},
		MaxTicks: 2000,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.crashes) != 1 || rec.crashes[0] != 10 {
		t.Fatalf("crash hooks: %v", rec.crashes)
	}
	if len(rec.restarts) != 1 || rec.restarts[0] != 20 {
		t.Fatalf("restart hooks: %v", rec.restarts)
	}
	if rec.corrupted != 1 {
		t.Fatalf("corrupt hook called %d times", rec.corrupted)
	}
	s := run.Stabilization
	if s.Corruptions != 1 || len(s.CorruptionNotes) != 1 || !strings.Contains(s.CorruptionNotes[0], "flipped bit") {
		t.Fatalf("corruption report: %d notes=%v", s.Corruptions, s.CorruptionNotes)
	}
	if s.Faults() != 3 {
		t.Fatalf("Faults() = %d, want 3", s.Faults())
	}
}

// TestProcGapScale: a rate-violation window stretches the step gaps the
// policy chooses, so the stretched run takes strictly longer than the
// clean one.
func TestProcGapScale(t *testing.T) {
	lastSend := func(scale func(ProcID, int64) int64) int64 {
		run, err := Simulate(Config{
			C1: 2, C2: 2, D: 6,
			Transmitter: Process{Auto: newPinger(t, 6), Policy: FixedGap{C: 2}},
			Receiver:    Process{Auto: newEchoSink(t), Policy: FixedGap{C: 2}},
			Delay:       chanmodel.MaxDelay{D: 6},
			ProcFaults:  stubSchedule{scale: scale, end: 100},
			Stop:        StopAfterWrites(6),
			MaxTicks:    5000,
		})
		if err != nil {
			t.Fatal(err)
		}
		at, ok := run.LastSendTime()
		if !ok {
			t.Fatal("no sends")
		}
		return at
	}
	clean := lastSend(nil)
	slow := lastSend(func(p ProcID, at int64) int64 {
		if p == ProcTransmitter && at < 100 {
			return 5
		}
		return 1
	})
	if slow <= clean {
		t.Fatalf("rate window did not slow the run: clean=%d scaled=%d", clean, slow)
	}
}

// TestStabilizationString covers both halves of the report rendering.
func TestStabilizationString(t *testing.T) {
	s := &Stabilization{Plan: "p", Crashes: 1, Restarts: 1, HealAt: 40}
	if got := s.String(); !strings.Contains(got, "1 crashes") || strings.Contains(got, "STABILIZED") {
		t.Fatalf("unmeasured: %s", got)
	}
	s.Measured, s.Stabilized, s.SettleTicks = true, true, 7
	if got := s.String(); !strings.Contains(got, "STABILIZED in 7 ticks") {
		t.Fatalf("measured: %s", got)
	}
	s.Stabilized = false
	s.LastViolationAt = 99
	if got := s.String(); !strings.Contains(got, "NOT stabilized") || !strings.Contains(got, "99") {
		t.Fatalf("failed verdict: %s", got)
	}
}

// TestProcIDAndKindStrings pins the tiny label helpers.
func TestProcIDAndKindStrings(t *testing.T) {
	if ProcTransmitter.String() != "t" || ProcReceiver.String() != "r" || ProcID(9).String() != "proc(9)" {
		t.Fatal("ProcID labels")
	}
	if ProcCrash.String() != "crash" || ProcRestart.String() != "restart" || ProcCorrupt.String() != "corrupt" {
		t.Fatal("kind labels")
	}
}
