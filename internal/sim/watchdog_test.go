package sim

import (
	"errors"
	"strings"
	"testing"

	"repro/internal/chanmodel"
	"repro/internal/wire"
)

// mutatingDelay is a test Mutator: it delivers every packet instantly but
// bumps the payload symbol of packets whose direction sequence number is
// in the corrupt set.
type mutatingDelay struct{ corrupt map[int64]bool }

func (m mutatingDelay) Name() string { return "test-mutator" }

func (m mutatingDelay) Arrivals(dirSeq int64, sendTime int64, dir wire.Dir, p wire.Packet) []int64 {
	return []int64{sendTime}
}

func (m mutatingDelay) ArrivalsMut(dirSeq int64, sendTime int64, dir wire.Dir, p wire.Packet) []chanmodel.Arrival {
	if m.corrupt[dirSeq] {
		p.Symbol++
	}
	return []chanmodel.Arrival{{At: sendTime, P: p}}
}

func TestWatchdogHealthyRun(t *testing.T) {
	run, err := Simulate(Config{
		C1: 2, C2: 2, D: 6,
		Transmitter: Process{Auto: newPinger(t, 5), Policy: FixedGap{C: 2}},
		Receiver:    Process{Auto: newEchoSink(t), Policy: FixedGap{C: 2}},
		Delay:       chanmodel.MaxDelay{D: 6},
		Stop:        StopAfterWrites(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	g := run.Degradation
	if g == nil {
		t.Fatal("no degradation report on a D > 0 run")
	}
	if !g.ModelHolds() {
		t.Fatalf("healthy channel reported degraded: %v", g)
	}
	if g.Sent != 5 || g.Delivered != 5 {
		t.Fatalf("sent=%d delivered=%d", g.Sent, g.Delivered)
	}
	if g.FirstViolation != -1 || g.LastViolation != -1 {
		t.Fatalf("violation window on healthy run: [%d, %d]", g.FirstViolation, g.LastViolation)
	}
	if !strings.Contains(g.String(), "healthy") {
		t.Fatalf("report string: %s", g)
	}
}

func TestWatchdogFlagsLateDeliveries(t *testing.T) {
	run, err := Simulate(Config{
		C1: 2, C2: 2, D: 6,
		Transmitter: Process{Auto: newPinger(t, 4), Policy: FixedGap{C: 2}},
		Receiver:    Process{Auto: newEchoSink(t), Policy: FixedGap{C: 2}},
		Delay:       chanmodel.ExceedBound{D: 6, Excess: 5},
		Stop:        StopAfterWrites(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	g := run.Degradation
	if g.Late != 4 {
		t.Fatalf("late = %d, want 4: %v", g.Late, g)
	}
	if g.ModelHolds() {
		t.Fatal("exceed-bound channel reported healthy")
	}
	// The first packet (sent at 0) breaks its deadline at d = 6.
	if g.FirstViolation != 6 {
		t.Fatalf("first violation at %d, want 6", g.FirstViolation)
	}
}

func TestWatchdogFlagsLossDupCorrupt(t *testing.T) {
	// Packet 0 dropped, packet 1 duplicated, packet 2 corrupted, packet 3 clean.
	drop := chanmodel.Func{
		Label: "scripted-faults",
		F: func(dirSeq int64, sendTime int64, _ wire.Dir, _ wire.Packet) []int64 {
			switch dirSeq {
			case 0:
				return nil
			case 1:
				return []int64{sendTime, sendTime + 1}
			default:
				return []int64{sendTime}
			}
		},
	}
	// Layer the corruption on top via a Mutator wrapper around the script.
	mut := scriptedMutator{inner: drop, corrupt: map[int64]bool{2: true}}
	run, err := Simulate(Config{
		C1: 2, C2: 2, D: 6,
		Transmitter: Process{Auto: newPinger(t, 4), Policy: FixedGap{C: 2}},
		Receiver:    Process{Auto: newEchoSink(t), Policy: FixedGap{C: 2}},
		Delay:       mut,
		Stop:        StopAfterWrites(4),
		MaxTicks:    200,
	})
	// Only 4 deliveries for 4 sends minus the drop plus the dup = 4 writes,
	// so the run completes; if it doesn't, the error still carries the run.
	if err != nil && !errors.Is(err, ErrNoProgress) {
		t.Fatal(err)
	}
	g := run.Degradation
	if g.Lost != 1 {
		t.Fatalf("lost = %d, want 1: %v", g.Lost, g)
	}
	if g.Duplicated != 1 {
		t.Fatalf("duplicated = %d, want 1: %v", g.Duplicated, g)
	}
	if g.Corrupted != 1 {
		t.Fatalf("corrupted = %d, want 1: %v", g.Corrupted, g)
	}
	if g.ModelHolds() {
		t.Fatal("faulty channel reported healthy")
	}
	if !strings.Contains(g.String(), "DEGRADED") {
		t.Fatalf("report string: %s", g)
	}
}

// scriptedMutator composes an arbitrary inner policy with per-dirSeq
// symbol corruption.
type scriptedMutator struct {
	inner   chanmodel.DelayPolicy
	corrupt map[int64]bool
}

func (s scriptedMutator) Name() string { return "scripted-mutator" }

func (s scriptedMutator) Arrivals(dirSeq int64, sendTime int64, dir wire.Dir, p wire.Packet) []int64 {
	return s.inner.Arrivals(dirSeq, sendTime, dir, p)
}

func (s scriptedMutator) ArrivalsMut(dirSeq int64, sendTime int64, dir wire.Dir, p wire.Packet) []chanmodel.Arrival {
	if s.corrupt[dirSeq] {
		p.Symbol++
	}
	out := make([]chanmodel.Arrival, 0, 2)
	for _, at := range s.inner.Arrivals(dirSeq, sendTime, dir, p) {
		out = append(out, chanmodel.Arrival{At: at, P: p})
	}
	return out
}

// overlapDelay delivers the one packet of the run twice, both deliveries
// past the d-bound, with the second delivery's payload mangled.
type overlapDelay struct{}

func (overlapDelay) Name() string { return "overlap-delay" }

func (overlapDelay) Arrivals(dirSeq int64, sendTime int64, dir wire.Dir, p wire.Packet) []int64 {
	return []int64{sendTime + 7, sendTime + 8}
}

func (overlapDelay) ArrivalsMut(dirSeq int64, sendTime int64, dir wire.Dir, p wire.Packet) []chanmodel.Arrival {
	mangled := p
	mangled.Symbol++
	return []chanmodel.Arrival{
		{At: sendTime + 7, P: p},
		{At: sendTime + 8, P: mangled},
	}
}

// TestWatchdogCounterSemantics pins the counting units down as a
// regression contract: Late and Corrupted are per delivery event,
// Duplicated is per delivery beyond a packet's first, Lost is per packet
// and only when nothing at all arrived. A single delivery may fall into
// several categories at once, so Violations() may exceed Delivered, and
// a packet whose every delivery was late is NOT also counted lost.
func TestWatchdogCounterSemantics(t *testing.T) {
	// One packet, delivered twice past d=6 (at +7 and +8), second copy
	// corrupted: Sent=1, Delivered=2, Late=2, Duplicated=1, Corrupted=1,
	// Lost=0, Violations=4.
	run, err := Simulate(Config{
		C1: 2, C2: 2, D: 6,
		Transmitter: Process{Auto: newPinger(t, 1), Policy: FixedGap{C: 2}},
		Receiver:    Process{Auto: newEchoSink(t), Policy: FixedGap{C: 2}},
		Delay:       overlapDelay{},
		Stop:        StopAfterWrites(2),
		MaxTicks:    100,
	})
	if err != nil {
		t.Fatal(err)
	}
	g := run.Degradation
	if g.Sent != 1 || g.Delivered != 2 {
		t.Fatalf("sent=%d delivered=%d, want 1/2: %v", g.Sent, g.Delivered, g)
	}
	if g.Late != 2 {
		t.Fatalf("late = %d, want 2 (both deliveries past d): %v", g.Late, g)
	}
	if g.Duplicated != 1 {
		t.Fatalf("duplicated = %d, want 1 (second delivery only): %v", g.Duplicated, g)
	}
	if g.Corrupted != 1 {
		t.Fatalf("corrupted = %d, want 1 (only the mangled copy): %v", g.Corrupted, g)
	}
	if g.Lost != 0 {
		t.Fatalf("lost = %d, want 0 (late delivery is not loss): %v", g.Lost, g)
	}
	if got := g.Violations(); got != 4 {
		t.Fatalf("violations = %d, want 4 (categories overlap per delivery): %v", got, g)
	}
	// Both violations stem from one packet sent at t=0: the late flags
	// land on the deadline (t=6), the dup/corrupt flags on the deliveries.
	if g.FirstViolation != 6 || g.LastViolation != 8 {
		t.Fatalf("fault window [%d, %d], want [6, 8]", g.FirstViolation, g.LastViolation)
	}
}

func TestWatchdogMutatorDeliversAlteredPacket(t *testing.T) {
	sink := newEchoSink(t)
	_, err := Simulate(Config{
		C1: 1, C2: 1, D: 4,
		Transmitter: Process{Auto: newPinger(t, 2), Policy: FixedGap{C: 1}},
		Receiver:    Process{Auto: sink, Policy: FixedGap{C: 1}},
		Delay:       mutatingDelay{corrupt: map[int64]bool{1: true}},
		Stop:        StopAfterWrites(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	if sink.received != 2 {
		t.Fatalf("received %d packets", sink.received)
	}
}

func TestWatchdogAbsentWithoutD(t *testing.T) {
	run, err := Simulate(Config{
		Transmitter: Process{Auto: newPinger(t, 1), Policy: FixedGap{C: 1}},
		Receiver:    Process{Auto: newEchoSink(t), Policy: FixedGap{C: 1}},
		Delay:       chanmodel.Zero{},
		Stop:        StopAfterWrites(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.Degradation != nil {
		t.Fatal("watchdog armed without a D bound")
	}
}
