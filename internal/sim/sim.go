// Package sim is the timed execution engine: a deterministic discrete-event
// simulator producing timed executions of the composition
// At ∘ Ar ∘ C(P) under chosen step schedules (Σ(At, Ar)) and a chosen
// channel delivery adversary (Δ(C(P))).
//
// Time is integer ticks. Event ordering at equal ticks is fixed: packet
// deliveries precede process steps, and same-tick deliveries occur in send
// order. Consequently two packets sent at least d ticks apart are never
// received out of order — the property the paper's burst protocols rely on
// ("At sends no packet during (t, t+d]", proof of Lemma 6.1).
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"math/rand"

	"repro/internal/chanmodel"
	"repro/internal/ioa"
	"repro/internal/timed"
	"repro/internal/wire"
)

// StepPolicy chooses each inter-step gap for one process. Gaps must lie in
// [c1, c2] for the run to be a good execution; the policy is deliberately
// unconstrained so fault-injection tests can violate the bounds.
type StepPolicy interface {
	// Name identifies the policy in experiment reports.
	Name() string
	// Gap returns the gap in ticks between local step stepIndex and step
	// stepIndex+1 (step 0 happens at time 0).
	Gap(stepIndex int64) int64
}

// FixedGap steps every C ticks — the paper's "every c time units" schedule.
type FixedGap struct {
	// C is the constant gap.
	C int64
}

var _ StepPolicy = FixedGap{}

// Name returns "fixed(C)".
func (f FixedGap) Name() string { return fmt.Sprintf("fixed(%d)", f.C) }

// Gap returns C.
func (f FixedGap) Gap(int64) int64 { return f.C }

// AlternatingGap alternates between the two extreme legal gaps.
type AlternatingGap struct {
	// C1, C2 are the alternating gaps.
	C1, C2 int64
}

var _ StepPolicy = AlternatingGap{}

// Name returns "alternating".
func (a AlternatingGap) Name() string { return fmt.Sprintf("alternating(%d,%d)", a.C1, a.C2) }

// Gap alternates C1, C2, C1, ...
func (a AlternatingGap) Gap(i int64) int64 {
	if i%2 == 0 {
		return a.C1
	}
	return a.C2
}

// RandomGap draws each gap uniformly from [C1, C2].
type RandomGap struct {
	// C1, C2 bound the gap.
	C1, C2 int64
	// Int63n is the randomness source, typically (*rand.Rand).Int63n.
	Int63n func(n int64) int64
}

var _ StepPolicy = RandomGap{}

// Name returns "random".
func (r RandomGap) Name() string { return fmt.Sprintf("random(%d,%d)", r.C1, r.C2) }

// Gap draws uniformly in [C1, C2].
func (r RandomGap) Gap(int64) int64 {
	if r.C2 <= r.C1 {
		return r.C1
	}
	return r.C1 + r.Int63n(r.C2-r.C1+1)
}

// ScriptedGap replays an explicit gap sequence, then repeats Fallback —
// the fully adversarial schedule used by the lower-bound constructions.
type ScriptedGap struct {
	// Gaps are the first len(Gaps) gaps.
	Gaps []int64
	// Fallback is used beyond the script.
	Fallback int64
}

var _ StepPolicy = ScriptedGap{}

// Name returns "scripted".
func (s ScriptedGap) Name() string { return "scripted" }

// Gap returns the scripted gap or the fallback.
func (s ScriptedGap) Gap(i int64) int64 {
	if i >= 0 && i < int64(len(s.Gaps)) {
		return s.Gaps[i]
	}
	return s.Fallback
}

// Process pairs a protocol automaton with its step schedule.
type Process struct {
	// Auto is the process automaton (transmitter or receiver).
	Auto ioa.Automaton
	// Policy schedules the process's local steps.
	Policy StepPolicy
}

// Actor names used in traces.
const (
	// ChannelActor attributes recv events to the channel automaton.
	ChannelActor = "chan"
)

// Config describes one timed run.
type Config struct {
	// C1, C2, D are the RSTP timing constants, used for reporting and by
	// Good validation; the engine itself follows the policies verbatim.
	C1, C2, D int64
	// Transmitter and Receiver are the two processes.
	Transmitter, Receiver Process
	// Delay is the channel's delivery adversary.
	Delay chanmodel.DelayPolicy
	// ProcFaults schedules process-level faults: crash/restart windows,
	// state corruption and step-rate violations (see procfault.go). Nil
	// means both processes are immortal, the paper's implicit assumption.
	ProcFaults ProcSchedule
	// Stop ends the run when it returns true (checked after every recorded
	// event). Nil means run until MaxTicks/MaxEvents.
	Stop func(r *Run) bool
	// MaxTicks caps simulated time (default 50_000_000).
	MaxTicks int64
	// MaxEvents caps recorded events (default 20_000_000).
	MaxEvents int
}

// StopReason says why a run ended.
type StopReason string

const (
	// StopCondition means cfg.Stop returned true.
	StopCondition StopReason = "stop-condition"
	// StopMaxTicks means simulated time hit the cap.
	StopMaxTicks StopReason = "max-ticks"
	// StopMaxEvents means the event cap was hit.
	StopMaxEvents StopReason = "max-events"
	// StopQuiescent means nothing remained scheduled to happen — both
	// processes permanently action-less and no packet in flight.
	StopQuiescent StopReason = "quiescent"
)

// Run is the result of one timed execution.
type Run struct {
	// Trace is the recorded timed execution.
	Trace []timed.Event
	// WriteCount is the number of write events.
	WriteCount int
	// SendCount counts send events (both directions).
	SendCount int
	// Now is the time of the last processed event.
	Now int64
	// Reason says why the run stopped.
	Reason StopReason
	// Degradation is the channel watchdog's report: whether the channel
	// stayed inside the Δ(C(P)) model during the run, and how it broke out
	// if not. Populated whenever Config.D > 0 (on every exit path,
	// including errors).
	Degradation *Degradation
	// Stabilization is the process-fault report: what Config.ProcFaults
	// did and (after MeasureStabilization) how fast the system converged.
	// Populated whenever Config.ProcFaults is set (on every exit path).
	Stabilization *Stabilization
}

// Writes returns the written sequence Y.
func (r *Run) Writes() []wire.Bit { return timed.Writes(r.Trace) }

// LastSendTime returns t(last-send), the effort numerator.
func (r *Run) LastSendTime() (int64, bool) { return timed.LastSendTime(r.Trace) }

// LastWriteTime returns the time of the final write.
func (r *Run) LastWriteTime() (int64, bool) { return timed.LastWriteTime(r.Trace) }

// StopAfterWrites stops a run once n messages have been written.
func StopAfterWrites(n int) func(*Run) bool {
	return func(r *Run) bool { return r.WriteCount >= n }
}

// ErrNoProgress is returned when a run ends by cap without meeting its
// stop condition.
var ErrNoProgress = errors.New("sim: run hit its cap before the stop condition")

// event kinds, ordered: process faults fire first at a tick (a crash at t
// suppresses that tick's deliveries and steps), then deliveries, then steps.
const (
	kindFault   = -1
	kindDeliver = 0
	kindStep    = 1
)

type event struct {
	time  int64
	kind  int
	tie   int64 // packetSeq for deliveries, push order for steps, schedule order for faults
	who   int   // step/fault: 0 = transmitter, 1 = receiver
	dir   wire.Dir
	pkt   wire.Packet
	pseq  int64         // packet instance id
	gen   int64         // step-chain generation; stale chains are dropped
	fkind ProcFaultKind // fault events only
	fseed int64         // corruption randomness seed
}

type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	if h[i].kind != h[j].kind {
		return h[i].kind < h[j].kind
	}
	return h[i].tie < h[j].tie
}
func (h eventHeap) Swap(i, j int)   { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)     { *h = append(*h, x.(event)) }
func (h *eventHeap) Pop() any       { old := *h; n := len(old); e := old[n-1]; *h = old[:n-1]; return e }
func (h eventHeap) peekTime() int64 { return h[0].time }

// Simulate runs the configured timed execution to completion.
func Simulate(cfg Config) (*Run, error) {
	if cfg.Transmitter.Auto == nil || cfg.Receiver.Auto == nil {
		return nil, errors.New("sim: both processes required")
	}
	if cfg.Transmitter.Policy == nil || cfg.Receiver.Policy == nil {
		return nil, errors.New("sim: both step policies required")
	}
	if cfg.Delay == nil {
		return nil, errors.New("sim: delay policy required")
	}
	if cfg.MaxTicks == 0 {
		cfg.MaxTicks = 50_000_000
	}
	if cfg.MaxEvents == 0 {
		cfg.MaxEvents = 20_000_000
	}

	procs := [2]Process{cfg.Transmitter, cfg.Receiver}
	var (
		h         eventHeap
		run       Run
		seq       int64 // trace sequence
		pushOrder int64
		packetSeq int64
		stepIdx   [2]int64
		dirSeq    = map[wire.Dir]int64{wire.TtoR: 0, wire.RtoT: 0}
	)
	var watch *watchdog
	if cfg.D > 0 {
		watch = newWatchdog(cfg.D)
		defer func() { run.Degradation = watch.finalize(run.Now) }()
	}
	var (
		stab      *Stabilization
		down      [2]bool
		downSince [2]int64
		stepGen   [2]int64
	)
	if cfg.ProcFaults != nil {
		stab = &Stabilization{Plan: cfg.ProcFaults.Name(), HealAt: cfg.ProcFaults.End()}
		defer func() {
			for w := range down {
				if down[w] {
					stab.DownTicks[w] += run.Now - downSince[w]
				}
			}
			run.Stabilization = stab
		}()
	}
	push := func(e event) {
		pushOrder++
		if e.kind == kindStep {
			e.tie = pushOrder
		}
		heap.Push(&h, e)
	}
	record := func(t int64, actor string, act ioa.Action, pseq int64) {
		seq++
		run.Trace = append(run.Trace, timed.Event{
			Time: t, Seq: seq, Actor: actor, Action: act, PacketSeq: pseq,
		})
		switch act.Kind() {
		case wire.KindWrite:
			run.WriteCount++
		case wire.KindSend:
			run.SendCount++
		}
	}

	push(event{time: 0, kind: kindStep, who: 0})
	push(event{time: 0, kind: kindStep, who: 1})
	if cfg.ProcFaults != nil {
		for i, ev := range cfg.ProcFaults.Events() {
			if ev.Proc != ProcTransmitter && ev.Proc != ProcReceiver {
				return nil, fmt.Errorf("sim: proc fault #%d targets unknown process %v", i, ev.Proc)
			}
			heap.Push(&h, event{time: ev.At, kind: kindFault, tie: int64(i),
				who: int(ev.Proc), fkind: ev.Kind, fseed: ev.Seed})
		}
	}

	for len(h) > 0 {
		if h.peekTime() > cfg.MaxTicks {
			run.Reason = StopMaxTicks
			return &run, fmt.Errorf("%w (max-ticks %d)", ErrNoProgress, cfg.MaxTicks)
		}
		if len(run.Trace) >= cfg.MaxEvents {
			run.Reason = StopMaxEvents
			return &run, fmt.Errorf("%w (max-events %d)", ErrNoProgress, cfg.MaxEvents)
		}
		e := heap.Pop(&h).(event)
		run.Now = e.time

		switch e.kind {
		case kindFault:
			p := procs[e.who]
			switch e.fkind {
			case ProcCrash:
				if !down[e.who] {
					down[e.who] = true
					downSince[e.who] = e.time
					stepGen[e.who]++ // orphan the live step chain
					stab.Crashes++
					if c, ok := p.Auto.(Restartable); ok {
						c.Crash(e.time)
					}
				}
			case ProcRestart:
				if down[e.who] {
					down[e.who] = false
					stab.DownTicks[e.who] += e.time - downSince[e.who]
					stab.Restarts++
					if c, ok := p.Auto.(Restartable); ok {
						c.Restart(e.time)
					}
					push(event{time: e.time, kind: kindStep, who: e.who, gen: stepGen[e.who]})
				}
			case ProcCorrupt:
				stab.Corruptions++
				if c, ok := p.Auto.(StateCorruptible); ok {
					note := c.CorruptState(rand.New(rand.NewSource(e.fseed)))
					stab.CorruptionNotes = append(stab.CorruptionNotes,
						fmt.Sprintf("t=%d %s: %s", e.time, p.Auto.Name(), note))
				}
			}

		case kindDeliver:
			// recv(p) is the channel's output and an input of the
			// destination process.
			target := 1 // TtoR lands at the receiver
			if e.dir == wire.RtoT {
				target = 0
			}
			act := wire.Recv{Dir: e.dir, P: e.pkt}
			if watch != nil {
				watch.onDeliver(e.pseq, e.time, e.pkt)
			}
			if down[target] {
				// The channel kept its promise; the crashed process wasn't
				// there to hear it. No recv event enters the execution.
				stab.LostWhileDown++
				break
			}
			if err := procs[target].Auto.Apply(act); err != nil {
				return &run, fmt.Errorf("sim: t=%d deliver %v to %s: %w", e.time, act, procs[target].Auto.Name(), err)
			}
			record(e.time, ChannelActor, act, e.pseq)

		case kindStep:
			if e.gen != stepGen[e.who] || down[e.who] {
				break // orphaned chain of a crashed process
			}
			p := procs[e.who]
			act, ok := p.Auto.NextLocal()
			if ok {
				if err := p.Auto.Apply(act); err != nil {
					return &run, fmt.Errorf("sim: t=%d step %s apply %v: %w", e.time, p.Auto.Name(), act, err)
				}
				pseqHere := int64(0)
				if s, isSend := act.(wire.Send); isSend {
					packetSeq++
					pseqHere = packetSeq
					ds := dirSeq[s.Dir]
					dirSeq[s.Dir] = ds + 1
					if watch != nil {
						watch.onSend(packetSeq, e.time, s.P)
					}
					// Packet-mutating policies (fault injection) deliver
					// possibly altered packets; plain policies deliver the
					// packet that was sent.
					if mut, ok := cfg.Delay.(chanmodel.Mutator); ok {
						for _, a := range mut.ArrivalsMut(ds, e.time, s.Dir, s.P) {
							at := a.At
							if at < e.time {
								at = e.time
							}
							push(event{time: at, kind: kindDeliver, tie: packetSeq, dir: s.Dir, pkt: a.P, pseq: packetSeq})
						}
					} else {
						for _, at := range cfg.Delay.Arrivals(ds, e.time, s.Dir, s.P) {
							if at < e.time {
								at = e.time
							}
							push(event{time: at, kind: kindDeliver, tie: packetSeq, dir: s.Dir, pkt: s.P, pseq: packetSeq})
						}
					}
				}
				record(e.time, p.Auto.Name(), act, pseqHere)
			}
			// Schedule the next step regardless: the step-bound property
			// constrains the process's clock, not its workload. A process
			// with nothing enabled simply has no event at this step.
			gap := p.Policy.Gap(stepIdx[e.who])
			stepIdx[e.who]++
			if gap < 1 {
				gap = 1
			}
			if cfg.ProcFaults != nil {
				if f := cfg.ProcFaults.GapScale(ProcID(e.who), e.time); f > 1 {
					gap *= f // step-rate violation window: gap pushed past c2
				}
			}
			push(event{time: e.time + gap, kind: kindStep, who: e.who, gen: e.gen})
		}

		if cfg.Stop != nil && cfg.Stop(&run) {
			run.Reason = StopCondition
			return &run, nil
		}
	}
	run.Reason = StopQuiescent
	return &run, nil
}
