package sim

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/chanmodel"
	"repro/internal/ioa"
	"repro/internal/timed"
	"repro/internal/wire"
)

// pinger sends `count` data packets, one per step.
type pinger struct{ m *ioa.Machine }

func newPinger(t *testing.T, count int) *pinger {
	t.Helper()
	sent := 0
	p := &pinger{}
	m, err := ioa.NewMachine("t",
		func(a ioa.Action) ioa.Class {
			if s, ok := a.(wire.Send); ok && s.Dir == wire.TtoR {
				return ioa.ClassOutput
			}
			return ioa.ClassNone
		},
		nil,
		[]ioa.Command{{
			Name:  "send",
			Class: ioa.ClassOutput,
			Pre:   func() bool { return sent < count },
			Act: func() ioa.Action {
				return wire.Send{Dir: wire.TtoR, P: wire.DataPacket(wire.Symbol(sent % 4))}
			},
			Eff: func() { sent++ },
		}})
	if err != nil {
		t.Fatal(err)
	}
	p.m = m
	return p
}

func (p *pinger) Name() string                    { return p.m.Name() }
func (p *pinger) Classify(a ioa.Action) ioa.Class { return p.m.Classify(a) }
func (p *pinger) NextLocal() (ioa.Action, bool)   { return p.m.NextLocal() }
func (p *pinger) Apply(a ioa.Action) error        { return p.m.Apply(a) }

// echoSink counts received packets and writes a bit per packet.
type echoSink struct {
	m        *ioa.Machine
	received int
	written  int
}

func newEchoSink(t *testing.T) *echoSink {
	t.Helper()
	s := &echoSink{}
	m, err := ioa.NewMachine("r",
		func(a ioa.Action) ioa.Class {
			switch act := a.(type) {
			case wire.Recv:
				if act.Dir == wire.TtoR {
					return ioa.ClassInput
				}
			case wire.Write:
				return ioa.ClassOutput
			case wire.Internal:
				if act.Name == "idle_r" {
					return ioa.ClassInternal
				}
			}
			return ioa.ClassNone
		},
		func(a ioa.Action) error {
			if _, ok := a.(wire.Recv); !ok {
				return ioa.ErrNotInSignature
			}
			s.received++
			return nil
		},
		[]ioa.Command{
			{
				Name:  "write",
				Class: ioa.ClassOutput,
				Pre:   func() bool { return s.written < s.received },
				Act:   func() ioa.Action { return wire.Write{M: wire.One} },
				Eff:   func() { s.written++ },
			},
			{
				Name:  "idle_r",
				Class: ioa.ClassInternal,
				Pre:   func() bool { return true },
				Act:   func() ioa.Action { return wire.Internal{Name: "idle_r"} },
				Eff:   func() {},
			},
		})
	if err != nil {
		t.Fatal(err)
	}
	s.m = m
	return s
}

func (s *echoSink) Name() string                    { return s.m.Name() }
func (s *echoSink) Classify(a ioa.Action) ioa.Class { return s.m.Classify(a) }
func (s *echoSink) NextLocal() (ioa.Action, bool)   { return s.m.NextLocal() }
func (s *echoSink) Apply(a ioa.Action) error        { return s.m.Apply(a) }

func TestSimulateBasicFlow(t *testing.T) {
	tr := newPinger(t, 5)
	rc := newEchoSink(t)
	run, err := Simulate(Config{
		C1: 2, C2: 2, D: 6,
		Transmitter: Process{Auto: tr, Policy: FixedGap{C: 2}},
		Receiver:    Process{Auto: rc, Policy: FixedGap{C: 2}},
		Delay:       chanmodel.FixedDelay{Delay: 3},
		Stop:        StopAfterWrites(5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if run.WriteCount != 5 || run.SendCount != 5 {
		t.Fatalf("writes=%d sends=%d", run.WriteCount, run.SendCount)
	}
	if run.Reason != StopCondition {
		t.Fatalf("reason = %s", run.Reason)
	}
	// Sends at 0,2,4,6,8; arrivals at 3,5,7,9,11.
	if last, ok := run.LastSendTime(); !ok || last != 8 {
		t.Fatalf("last send = %d", last)
	}
	// Every delay within bound, steps within [2,2].
	v := timed.Good(run.Trace, timed.GoodConfig{
		C1: 2, C2: 2, D: 6, Transmitter: "t", Receiver: "r",
		X: []wire.Bit{1, 1, 1, 1, 1}, RequireComplete: true,
	})
	if len(v) != 0 {
		t.Fatalf("violations: %v", v)
	}
}

func TestSimulateConfigValidation(t *testing.T) {
	tr := newPinger(t, 1)
	rc := newEchoSink(t)
	good := Config{
		Transmitter: Process{Auto: tr, Policy: FixedGap{C: 1}},
		Receiver:    Process{Auto: rc, Policy: FixedGap{C: 1}},
		Delay:       chanmodel.Zero{},
		Stop:        StopAfterWrites(1),
	}
	bad := good
	bad.Transmitter.Auto = nil
	if _, err := Simulate(bad); err == nil {
		t.Error("missing automaton should fail")
	}
	bad = good
	bad.Receiver.Policy = nil
	if _, err := Simulate(bad); err == nil {
		t.Error("missing policy should fail")
	}
	bad = good
	bad.Delay = nil
	if _, err := Simulate(bad); err == nil {
		t.Error("missing delay policy should fail")
	}
}

func TestSimulateMaxTicks(t *testing.T) {
	tr := newPinger(t, 0) // nothing to send: writes never happen
	rc := newEchoSink(t)
	run, err := Simulate(Config{
		Transmitter: Process{Auto: tr, Policy: FixedGap{C: 1}},
		Receiver:    Process{Auto: rc, Policy: FixedGap{C: 1}},
		Delay:       chanmodel.Zero{},
		Stop:        StopAfterWrites(1),
		MaxTicks:    100,
	})
	if !errors.Is(err, ErrNoProgress) {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
	if run.Reason != StopMaxTicks {
		t.Fatalf("reason = %s", run.Reason)
	}
}

func TestSimulateMaxEvents(t *testing.T) {
	tr := newPinger(t, 0)
	rc := newEchoSink(t) // idles forever, generating events
	run, err := Simulate(Config{
		Transmitter: Process{Auto: tr, Policy: FixedGap{C: 1}},
		Receiver:    Process{Auto: rc, Policy: FixedGap{C: 1}},
		Delay:       chanmodel.Zero{},
		Stop:        StopAfterWrites(1),
		MaxTicks:    1_000_000,
		MaxEvents:   50,
	})
	if !errors.Is(err, ErrNoProgress) {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
	if run.Reason != StopMaxEvents {
		t.Fatalf("reason = %s", run.Reason)
	}
}

// TestDeliveryPrecedesStepAtSameTick pins the documented tie-break: a
// packet arriving at tick T is visible to a process step at tick T.
func TestDeliveryPrecedesStepAtSameTick(t *testing.T) {
	tr := newPinger(t, 1)
	rc := newEchoSink(t)
	// Send at 0, delay 2 -> arrival at 2; receiver steps at 0,2,4...
	// With delivery-before-step the write can happen at tick 2... but the
	// receiver's tick-2 step sees received=1 only if delivery sorted first.
	run, err := Simulate(Config{
		Transmitter: Process{Auto: tr, Policy: FixedGap{C: 2}},
		Receiver:    Process{Auto: rc, Policy: FixedGap{C: 2}},
		Delay:       chanmodel.FixedDelay{Delay: 2},
		Stop:        StopAfterWrites(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if last, ok := run.LastWriteTime(); !ok || last != 2 {
		t.Fatalf("write at %d, want 2 (delivery must precede the step)", last)
	}
}

// TestSameTickDeliveriesInSendOrder pins the second tie-break rule.
func TestSameTickDeliveriesInSendOrder(t *testing.T) {
	tr := newPinger(t, 3)
	rc := newEchoSink(t)
	// Sends at 0,1,2 all delivered at tick 5.
	delay := chanmodel.Func{Label: "batch", F: func(_, _ int64, _ wire.Dir, _ wire.Packet) []int64 {
		return []int64{5}
	}}
	run, err := Simulate(Config{
		Transmitter: Process{Auto: tr, Policy: FixedGap{C: 1}},
		Receiver:    Process{Auto: rc, Policy: FixedGap{C: 1}},
		Delay:       delay,
		Stop:        StopAfterWrites(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	var seqs []int64
	var times []int64
	for _, e := range run.Trace {
		if e.Action.Kind() == wire.KindRecv {
			seqs = append(seqs, e.PacketSeq)
			times = append(times, e.Time)
		}
	}
	if len(seqs) != 3 {
		t.Fatalf("recvs = %d", len(seqs))
	}
	for i := range seqs {
		if times[i] != 5 {
			t.Fatalf("recv %d at %d, want 5", i, times[i])
		}
		if i > 0 && seqs[i] < seqs[i-1] {
			t.Fatalf("same-tick deliveries out of send order: %v", seqs)
		}
	}
}

// TestStepPolicies checks the gap sequences of each policy.
func TestStepPolicies(t *testing.T) {
	if g := (FixedGap{C: 4}).Gap(99); g != 4 {
		t.Errorf("FixedGap = %d", g)
	}
	alt := AlternatingGap{C1: 2, C2: 5}
	if alt.Gap(0) != 2 || alt.Gap(1) != 5 || alt.Gap(2) != 2 {
		t.Error("AlternatingGap sequence wrong")
	}
	rng := rand.New(rand.NewSource(4))
	rg := RandomGap{C1: 3, C2: 7, Int63n: rng.Int63n}
	for i := int64(0); i < 100; i++ {
		if g := rg.Gap(i); g < 3 || g > 7 {
			t.Fatalf("RandomGap out of range: %d", g)
		}
	}
	deg := RandomGap{C1: 3, C2: 3, Int63n: rng.Int63n}
	if deg.Gap(0) != 3 {
		t.Error("degenerate RandomGap should return C1")
	}
	sc := ScriptedGap{Gaps: []int64{9, 8}, Fallback: 2}
	if sc.Gap(0) != 9 || sc.Gap(1) != 8 || sc.Gap(2) != 2 || sc.Gap(-1) != 2 {
		t.Error("ScriptedGap sequence wrong")
	}
	for _, p := range []StepPolicy{FixedGap{C: 1}, alt, rg, sc} {
		if p.Name() == "" {
			t.Errorf("%T has empty name", p)
		}
	}
}

// TestScriptedScheduleTiming verifies gaps drive event times exactly.
func TestScriptedScheduleTiming(t *testing.T) {
	tr := newPinger(t, 3)
	rc := newEchoSink(t)
	run, err := Simulate(Config{
		Transmitter: Process{Auto: tr, Policy: ScriptedGap{Gaps: []int64{3, 5}, Fallback: 2}},
		Receiver:    Process{Auto: rc, Policy: FixedGap{C: 1}},
		Delay:       chanmodel.Zero{},
		Stop:        StopAfterWrites(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	var sendTimes []int64
	for _, e := range run.Trace {
		if e.Actor == "t" && e.Action.Kind() == wire.KindSend {
			sendTimes = append(sendTimes, e.Time)
		}
	}
	want := []int64{0, 3, 8}
	if fmt.Sprint(sendTimes) != fmt.Sprint(want) {
		t.Fatalf("send times %v, want %v", sendTimes, want)
	}
}

// TestLossMakesRunStall: a lossy channel with no retransmission stalls.
func TestLossMakesRunStall(t *testing.T) {
	tr := newPinger(t, 3)
	rc := newEchoSink(t)
	drop := chanmodel.Func{Label: "drop-all", F: func(_, _ int64, _ wire.Dir, _ wire.Packet) []int64 {
		return nil
	}}
	_, err := Simulate(Config{
		Transmitter: Process{Auto: tr, Policy: FixedGap{C: 1}},
		Receiver:    Process{Auto: rc, Policy: FixedGap{C: 1}},
		Delay:       drop,
		Stop:        StopAfterWrites(3),
		MaxTicks:    200,
	})
	if !errors.Is(err, ErrNoProgress) {
		t.Fatalf("err = %v, want ErrNoProgress", err)
	}
}

// TestArrivalBeforeSendClamped: a policy returning an arrival in the past
// is clamped to the send time (no causality violation).
func TestArrivalBeforeSendClamped(t *testing.T) {
	tr := newPinger(t, 1)
	rc := newEchoSink(t)
	bad := chanmodel.Func{Label: "time-travel", F: func(_, st int64, _ wire.Dir, _ wire.Packet) []int64 {
		return []int64{st - 100}
	}}
	run, err := Simulate(Config{
		Transmitter: Process{Auto: tr, Policy: FixedGap{C: 1}},
		Receiver:    Process{Auto: rc, Policy: FixedGap{C: 1}},
		Delay:       bad,
		Stop:        StopAfterWrites(1),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range run.Trace {
		if e.Action.Kind() == wire.KindRecv && e.Time < 0 {
			t.Fatal("causality violated")
		}
	}
	if v := timed.DelayBound(run.Trace, 10, true); len(v) != 0 {
		t.Fatalf("clamped arrival still flagged: %v", v)
	}
}

// TestDuplicateArrivalsBothDelivered: a duplicating policy yields two recv
// events for one send.
func TestDuplicateArrivalsBothDelivered(t *testing.T) {
	tr := newPinger(t, 1)
	rc := newEchoSink(t)
	dup := chanmodel.Func{Label: "dup", F: func(_, st int64, _ wire.Dir, _ wire.Packet) []int64 {
		return []int64{st + 1, st + 2}
	}}
	run, err := Simulate(Config{
		Transmitter: Process{Auto: tr, Policy: FixedGap{C: 1}},
		Receiver:    Process{Auto: rc, Policy: FixedGap{C: 1}},
		Delay:       dup,
		Stop:        StopAfterWrites(2), // sink writes once per recv
	})
	if err != nil {
		t.Fatal(err)
	}
	recvs := 0
	for _, e := range run.Trace {
		if e.Action.Kind() == wire.KindRecv {
			recvs++
		}
	}
	if recvs != 2 {
		t.Fatalf("recvs = %d, want 2", recvs)
	}
}
