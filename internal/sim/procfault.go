// Process-level fault machinery: the engine-side half of the crash/
// restart/corruption story. The channel watchdog (watchdog.go) covers the
// ways the *channel* can leave the model; this file covers the ways a
// *process* can — it stops taking steps (crash), comes back after a delay
// (restart), has its state mutated by a transient fault (corruption), or
// violates its own step-rate bound (gaps stretched past c2).
//
// The engine stays protocol-agnostic: Config.ProcFaults supplies a timed
// schedule of fault events (implemented by faults.ProcPlan), and two
// optional automaton interfaces let a protocol stack opt into real crash
// semantics. An automaton that implements neither merely freezes for the
// crash window — a "pause" fault: its state survives, only its steps and
// its incoming deliveries are lost. An automaton implementing Restartable
// models volatile state: Crash wipes it, Restart reloads whatever the
// protocol persisted (see rstp.Stabilize). StateCorruptible additionally
// lets a corruption fault flip a bit of that persisted or live state.
package sim

import (
	"fmt"
	"math/rand"

	"repro/internal/timed"
	"repro/internal/wire"
)

// ProcID identifies one of the two processes of a run.
type ProcID int

const (
	// ProcTransmitter is the transmitter process.
	ProcTransmitter ProcID = 0
	// ProcReceiver is the receiver process.
	ProcReceiver ProcID = 1
)

// String renders the process id as "t" or "r".
func (p ProcID) String() string {
	switch p {
	case ProcTransmitter:
		return "t"
	case ProcReceiver:
		return "r"
	default:
		return fmt.Sprintf("proc(%d)", int(p))
	}
}

// ProcFaultKind names one process-fault event.
type ProcFaultKind int

const (
	// ProcCrash halts the process: no local steps are taken and every
	// packet delivered to it is discarded until the matching restart.
	ProcCrash ProcFaultKind = iota + 1
	// ProcRestart brings a crashed process back up.
	ProcRestart
	// ProcCorrupt mutates the process's state in place (a transient
	// fault), via the StateCorruptible interface when implemented.
	ProcCorrupt
)

// String renders the kind.
func (k ProcFaultKind) String() string {
	switch k {
	case ProcCrash:
		return "crash"
	case ProcRestart:
		return "restart"
	case ProcCorrupt:
		return "corrupt"
	default:
		return fmt.Sprintf("fault(%d)", int(k))
	}
}

// ProcEvent is one scheduled process-fault event.
type ProcEvent struct {
	// At is the tick at which the fault fires.
	At int64
	// Proc is the targeted process.
	Proc ProcID
	// Kind is the fault applied.
	Kind ProcFaultKind
	// Seed drives the randomness of a ProcCorrupt event (the engine hands
	// the target a rand.Rand built from it, keeping runs reproducible).
	Seed int64
}

// ProcSchedule is a process-fault plan: a deterministic timed schedule of
// crash/restart/corruption events plus step-rate distortion windows.
// faults.ProcPlan is the canonical implementation.
type ProcSchedule interface {
	// Name identifies the plan in reports.
	Name() string
	// Events returns the fault events, sorted by At; events at the same
	// tick fire in slice order (a plan that corrupts a checkpoint "during"
	// a crash emits the corrupt event before the restart).
	Events() []ProcEvent
	// GapScale returns the multiplier applied to the process's step gap
	// chosen at time t. 1 means the schedule is honoured; a larger factor
	// is a step-rate violation window (gaps pushed past c2).
	GapScale(p ProcID, t int64) int64
	// End returns the heal time: the close of the last fault window.
	// After End the plan is inert and a self-stabilizing protocol must
	// converge. Plans with a crash that never restarts report the crash
	// time here and forfeit liveness.
	End() int64
}

// Restartable is implemented by automata that model genuine crash
// semantics: Crash wipes volatile state, Restart reconstructs from
// whatever the protocol persisted. Automata without it freeze through
// crash windows and resume unchanged — a pause, not a crash.
type Restartable interface {
	// Crash tells the automaton its process halted at the given tick.
	Crash(now int64)
	// Restart tells the automaton its process came back at the given tick.
	Restart(now int64)
}

// StateCorruptible is implemented by automata that expose their state to
// transient corruption faults. CorruptState must mutate a single field or
// bit, drawing any choices from r, and return a short description of the
// damage for the Stabilization report.
type StateCorruptible interface {
	CorruptState(r *rand.Rand) string
}

// Stabilization is a run's process-fault report: what the plan did to the
// processes, and — once MeasureStabilization has seen the input X — how
// quickly the system converged back to the prefix invariant after the
// last fault healed. Populated on Run.Stabilization whenever
// Config.ProcFaults is set (on every exit path, including errors).
type Stabilization struct {
	// Plan names the schedule that was applied.
	Plan string
	// Crashes, Restarts and Corruptions count the fault events executed.
	Crashes, Restarts, Corruptions int
	// DownTicks accumulates, per process, the total time spent crashed.
	DownTicks [2]int64
	// LostWhileDown counts packets the channel delivered to a crashed
	// process — discarded at the process boundary, invisible to the
	// channel watchdog's loss counter (the channel kept its promise).
	LostWhileDown int
	// HealAt is the plan's End(): the close of the last fault window.
	HealAt int64
	// CorruptionNotes describe each corruption applied, for debugging.
	CorruptionNotes []string

	// The convergence verdict, filled in by Run.MeasureStabilization.

	// Measured reports whether MeasureStabilization has run.
	Measured bool
	// LastViolationAt is the time of the last write that violated the
	// prefix invariant, -1 if the output tape stayed clean.
	LastViolationAt int64
	// Stabilized reports the self-stabilization outcome: Y = X at the end
	// of the run and no prefix violation after the heal.
	Stabilized bool
	// SettleTicks is the convergence time: last write minus HealAt, when
	// the run stabilized and its final write landed after the heal.
	SettleTicks int64
	// ConvergenceSends counts packets sent after the heal — the message
	// cost of re-establishing and finishing the transfer.
	ConvergenceSends int
}

// String renders the report on one line.
func (s *Stabilization) String() string {
	b := fmt.Sprintf("proc faults [%s]: %d crashes, %d restarts, %d corruptions; down t=%d r=%d ticks; %d deliveries lost while down; heal t=%d",
		s.Plan, s.Crashes, s.Restarts, s.Corruptions, s.DownTicks[0], s.DownTicks[1], s.LostWhileDown, s.HealAt)
	if !s.Measured {
		return b
	}
	if s.Stabilized {
		return b + fmt.Sprintf("; STABILIZED in %d ticks (%d sends after heal)", s.SettleTicks, s.ConvergenceSends)
	}
	return b + fmt.Sprintf("; NOT stabilized (last prefix violation t=%d)", s.LastViolationAt)
}

// Faults returns the total number of fault events executed.
func (s *Stabilization) Faults() int { return s.Crashes + s.Restarts + s.Corruptions }

// MeasureStabilization fills the convergence half of the Stabilization
// report against the intended input X and returns it (nil when the run
// had no process-fault schedule). Stabilized means the paper's
// correctness condition was re-established: Y = X at the end of the run
// with no prefix violation after the plan's heal time — the
// self-stabilization contract of rstp.Stabilize.
func (r *Run) MeasureStabilization(x []wire.Bit) *Stabilization {
	s := r.Stabilization
	if s == nil {
		return nil
	}
	s.Measured = true
	s.LastViolationAt = -1
	for _, v := range timed.PrefixInvariant(r.Trace, x, false) {
		if v.Index >= 0 && v.Index < len(r.Trace) {
			if t := r.Trace[v.Index].Time; t > s.LastViolationAt {
				s.LastViolationAt = t
			}
		}
	}
	complete := len(timed.PrefixInvariant(r.Trace, x, true)) == 0
	s.Stabilized = complete && s.LastViolationAt <= s.HealAt
	s.SettleTicks = 0
	if last, ok := timed.LastWriteTime(r.Trace); ok && s.Stabilized && last > s.HealAt {
		s.SettleTicks = last - s.HealAt
	}
	s.ConvergenceSends = 0
	for _, ev := range r.Trace {
		if ev.Action.Kind() == wire.KindSend && ev.Time > s.HealAt {
			s.ConvergenceSends++
		}
	}
	return s
}
