package sim

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/wire"
)

// Timeline renders a run as a space-time diagram in the spirit of the
// paper's Figure 2: one row per tick that has events, three columns
// (transmitter, channel, receiver). Sends show as rightward arrows out of
// their process, deliveries as arrows into the destination.
//
//	tick  transmitter            channel                   receiver
//	0     send data(2) ──▶       [1 in flight]
//	12                           ──▶ data(2)               (recv)
//	12                                                     write(1)
//
// maxRows caps the output (0 = everything).
func Timeline(w io.Writer, run *Run, transmitter, receiver string, maxRows int) error {
	const (
		colTick = 6
		colT    = 26
		colC    = 26
	)
	header := fmt.Sprintf("%-*s%-*s%-*s%s", colTick, "tick", colT, transmitter+" (transmitter)", colC, "channel", receiver+" (receiver)")
	if _, err := fmt.Fprintln(w, header); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", len(header))); err != nil {
		return err
	}
	inFlight := 0
	rows := 0
	for _, e := range run.Trace {
		if maxRows > 0 && rows >= maxRows {
			remaining := len(run.Trace) - rows
			_, err := fmt.Fprintf(w, "... %d more events\n", remaining)
			return err
		}
		var tCol, cCol, rCol string
		switch act := e.Action.(type) {
		case wire.Send:
			inFlight++
			arrow := fmt.Sprintf("%s ──▶", act.P)
			if e.Actor == transmitter {
				tCol = arrow
			} else {
				rCol = "◀── " + act.P.String()
			}
			cCol = fmt.Sprintf("[%d in flight]", inFlight)
		case wire.Recv:
			inFlight--
			cCol = fmt.Sprintf("──▶ %s", act.P)
			if act.Dir == wire.TtoR {
				rCol = "(recv)"
			} else {
				tCol = "(recv ack)"
			}
		case wire.Write:
			rCol = act.String()
		default:
			if e.Actor == transmitter {
				tCol = e.Action.String()
			} else {
				rCol = e.Action.String()
			}
		}
		if _, err := fmt.Fprintf(w, "%-*d%-*s%-*s%s\n", colTick, e.Time, colT, tCol, colC, cCol, rCol); err != nil {
			return err
		}
		rows++
	}
	return nil
}
