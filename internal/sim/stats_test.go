package sim

import (
	"strings"
	"testing"

	"repro/internal/chanmodel"
)

func TestCollectStats(t *testing.T) {
	tr := newPinger(t, 4)
	rc := newEchoSink(t)
	run, err := Simulate(Config{
		C1: 2, C2: 2, D: 6,
		Transmitter: Process{Auto: tr, Policy: FixedGap{C: 2}},
		Receiver:    Process{Auto: rc, Policy: FixedGap{C: 2}},
		Delay:       chanmodel.FixedDelay{Delay: 3},
		Stop:        StopAfterWrites(4),
	})
	if err != nil {
		t.Fatal(err)
	}
	st := Collect(run, "t", "r")
	if st.SendsTR != 4 || st.SendsRT != 0 {
		t.Errorf("sends = %d/%d, want 4/0", st.SendsTR, st.SendsRT)
	}
	if st.Recvs != 4 || st.Writes != 4 {
		t.Errorf("recvs=%d writes=%d", st.Recvs, st.Writes)
	}
	if st.MinDelay != 3 || st.MaxDelay != 3 || st.MeanDelay != 3 {
		t.Errorf("delays = %d/%.2f/%d, want 3/3/3", st.MinDelay, st.MeanDelay, st.MaxDelay)
	}
	// Sends 2 apart, delay 3: at most 2 in flight at once.
	if st.PeakInFlight < 1 || st.PeakInFlight > 2 {
		t.Errorf("peak in flight = %d", st.PeakInFlight)
	}
	if st.TSteps != 4 {
		t.Errorf("t steps = %d", st.TSteps)
	}
	if st.RIdle == 0 {
		t.Error("receiver should have idled at least once")
	}
	if st.EffortPerMessage <= 0 {
		t.Error("effort should be positive")
	}
	if st.Events != len(run.Trace) || st.Duration == 0 {
		t.Errorf("events=%d duration=%d", st.Events, st.Duration)
	}
	out := st.String()
	for _, want := range []string{"sends", "delay", "steps", "writes"} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestCollectStatsEmptyRun(t *testing.T) {
	st := Collect(&Run{}, "t", "r")
	if st.Events != 0 || st.MinDelay != 0 || st.EffortPerMessage != 0 {
		t.Errorf("empty stats: %+v", st)
	}
	if st.String() == "" {
		t.Error("report should render")
	}
}
