// The degradation watchdog: the runtime detector that flags when the
// channel has left the paper's model. Every packet the engine forwards is
// already sequence-numbered (PacketSeq — the watchdog's probes), and
// Config.D supplies the Δ(C(P)) bound, so the watchdog can arm a d-tick
// timer per send and classify every way the channel can break its
// promise: late delivery, outright loss, duplication, and payload
// corruption. The report rides on Run.Degradation; unlike the post-hoc
// timed.Good validators it needs no trace scan and sees drops that never
// produce a recv event.
package sim

import (
	"fmt"

	"repro/internal/wire"
)

// Degradation is a run's channel-health report: how far the channel
// strayed from the Δ(C(P)) model during the run. A report with
// ModelHolds() == true means every packet behaved; anything else means
// the paper's guarantees were void for at least part of the run and only
// a hardened protocol's safety survives.
//
// Counter units: Sent and Lost count packets; Delivered, Late and
// Corrupted count delivery events; Duplicated counts delivery events
// beyond a packet's first. The delivery-event categories are independent
// — a single delivery that is both a late duplicate and carries a
// mangled payload increments Late, Duplicated and Corrupted all at once
// — so Violations() can exceed Delivered. Lost never overlaps them: a
// packet is lost only if it had no delivery at all before its deadline
// expired and the run outlived that deadline.
type Degradation struct {
	// D is the delay bound the watchdog enforced.
	D int64
	// Sent counts packets handed to the channel.
	Sent int
	// Delivered counts delivery events (duplicates included).
	Delivered int
	// Late counts deliveries more than D ticks after their send; every
	// late delivery counts, including duplicates.
	Late int
	// Lost counts packets never delivered although the run extended past
	// their send time + D. Packets still inside their window at the end of
	// the run are not counted.
	Lost int
	// Duplicated counts extra deliveries of an already-delivered packet
	// (n deliveries of one packet add n-1 here).
	Duplicated int
	// Corrupted counts deliveries whose packet differs from what was
	// sent; every mangled delivery counts, including duplicates.
	Corrupted int
	// FirstViolation and LastViolation bracket the observed fault window:
	// the times at which the model was first and last seen broken (for a
	// late or lost packet, the moment its deadline expired). Both are -1
	// when the model held.
	FirstViolation, LastViolation int64
}

// Violations returns the total number of model violations observed.
func (g *Degradation) Violations() int {
	return g.Late + g.Lost + g.Duplicated + g.Corrupted
}

// ModelHolds reports whether the channel stayed inside Δ(C(P)) for the
// whole run.
func (g *Degradation) ModelHolds() bool { return g.Violations() == 0 }

// String renders the report on one line.
func (g *Degradation) String() string {
	if g.ModelHolds() {
		return fmt.Sprintf("channel healthy: %d sent, %d delivered within d=%d", g.Sent, g.Delivered, g.D)
	}
	return fmt.Sprintf("channel DEGRADED: %d sent, %d delivered, %d late, %d lost, %d duplicated, %d corrupted (d=%d, fault window [%d, %d])",
		g.Sent, g.Delivered, g.Late, g.Lost, g.Duplicated, g.Corrupted, g.D, g.FirstViolation, g.LastViolation)
}

// watchdog observes sends and deliveries during a run and builds the
// Degradation report.
type watchdog struct {
	report   Degradation
	inflight map[int64]*probe
}

// probe is one armed d-bound timer: a sent packet awaiting delivery.
type probe struct {
	sendTime   int64
	pkt        wire.Packet
	deliveries int
}

func newWatchdog(d int64) *watchdog {
	return &watchdog{
		report:   Degradation{D: d, FirstViolation: -1, LastViolation: -1},
		inflight: make(map[int64]*probe),
	}
}

func (w *watchdog) flag(at int64) {
	if w.report.FirstViolation < 0 || at < w.report.FirstViolation {
		w.report.FirstViolation = at
	}
	if at > w.report.LastViolation {
		w.report.LastViolation = at
	}
}

func (w *watchdog) onSend(pseq, at int64, pkt wire.Packet) {
	w.report.Sent++
	w.inflight[pseq] = &probe{sendTime: at, pkt: pkt}
}

func (w *watchdog) onDeliver(pseq, at int64, pkt wire.Packet) {
	w.report.Delivered++
	p, ok := w.inflight[pseq]
	if !ok {
		return // delivery the engine never announced; DelayBound catches it
	}
	p.deliveries++
	if p.deliveries > 1 {
		w.report.Duplicated++
		w.flag(at)
	}
	if at-p.sendTime > w.report.D {
		w.report.Late++
		w.flag(p.sendTime + w.report.D)
	}
	if pkt != p.pkt {
		w.report.Corrupted++
		w.flag(at)
	}
}

// finalize classifies the remaining in-flight packets: anything whose
// deadline expired before the run ended is lost. Packets still inside
// their window are indeterminate and not counted.
func (w *watchdog) finalize(now int64) *Degradation {
	for _, p := range w.inflight {
		if p.deliveries == 0 && p.sendTime+w.report.D < now {
			w.report.Lost++
			w.flag(p.sendTime + w.report.D)
		}
	}
	r := w.report
	return &r
}
