package sim

import (
	"fmt"
	"strings"

	"repro/internal/timed"
	"repro/internal/wire"
)

// Stats summarises one timed run: the operational quantities behind the
// effort numbers (channel utilisation, delay distribution, step
// utilisation), used by `rstpsim -stats` and the examples.
type Stats struct {
	// Events is the total recorded event count.
	Events int
	// Duration is the time of the last event.
	Duration int64
	// SendsTR and SendsRT count sends per direction.
	SendsTR, SendsRT int
	// Recvs counts deliveries.
	Recvs int
	// Writes counts write events.
	Writes int
	// MinDelay, MaxDelay and MeanDelay summarise packet delays.
	MinDelay, MaxDelay int64
	MeanDelay          float64
	// PeakInFlight is the maximum number of simultaneously undelivered
	// packets.
	PeakInFlight int
	// TSteps and RSteps count local events per process; TIdle and RIdle
	// the subset that were internal idle/wait actions.
	TSteps, RSteps int
	TIdle, RIdle   int
	// EffortPerMessage is t(last-send)/writes when both exist.
	EffortPerMessage float64
}

// Collect computes statistics over a run's trace. transmitter and
// receiver name the process actors.
func Collect(run *Run, transmitter, receiver string) Stats {
	var st Stats
	st.Events = len(run.Trace)
	sendTimes := make(map[int64]int64)
	var (
		delaySum   int64
		delayCount int64
		inFlight   int
	)
	st.MinDelay = -1
	for _, e := range run.Trace {
		if e.Time > st.Duration {
			st.Duration = e.Time
		}
		switch act := e.Action.(type) {
		case wire.Send:
			if act.Dir == wire.TtoR {
				st.SendsTR++
			} else {
				st.SendsRT++
			}
			sendTimes[e.PacketSeq] = e.Time
			inFlight++
			if inFlight > st.PeakInFlight {
				st.PeakInFlight = inFlight
			}
		case wire.Recv:
			st.Recvs++
			if sent, ok := sendTimes[e.PacketSeq]; ok {
				lag := e.Time - sent
				delaySum += lag
				delayCount++
				if st.MinDelay < 0 || lag < st.MinDelay {
					st.MinDelay = lag
				}
				if lag > st.MaxDelay {
					st.MaxDelay = lag
				}
				delete(sendTimes, e.PacketSeq)
				inFlight--
			}
		case wire.Write:
			st.Writes++
		}
		switch e.Actor {
		case transmitter:
			st.TSteps++
			if _, isInternal := e.Action.(wire.Internal); isInternal {
				st.TIdle++
			}
		case receiver:
			st.RSteps++
			if _, isInternal := e.Action.(wire.Internal); isInternal {
				st.RIdle++
			}
		}
	}
	if delayCount > 0 {
		st.MeanDelay = float64(delaySum) / float64(delayCount)
	}
	if st.MinDelay < 0 {
		st.MinDelay = 0
	}
	if last, ok := timed.LastSendTime(run.Trace); ok && st.Writes > 0 {
		st.EffortPerMessage = float64(last) / float64(st.Writes)
	}
	return st
}

// String renders the statistics as a small report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "events      %d over %d ticks\n", s.Events, s.Duration)
	fmt.Fprintf(&b, "sends       %d t->r, %d r->t; %d deliveries (peak in flight %d)\n",
		s.SendsTR, s.SendsRT, s.Recvs, s.PeakInFlight)
	fmt.Fprintf(&b, "delay       min %d, mean %.2f, max %d ticks\n", s.MinDelay, s.MeanDelay, s.MaxDelay)
	fmt.Fprintf(&b, "steps       t: %d (%d idle), r: %d (%d idle)\n", s.TSteps, s.TIdle, s.RSteps, s.RIdle)
	fmt.Fprintf(&b, "writes      %d (effort %.3f ticks/message)", s.Writes, s.EffortPerMessage)
	return b.String()
}
