package sim

import (
	"strings"
	"testing"

	"repro/internal/chanmodel"
)

func timelineRun(t *testing.T) *Run {
	t.Helper()
	tr := newPinger(t, 3)
	rc := newEchoSink(t)
	run, err := Simulate(Config{
		C1: 2, C2: 2, D: 6,
		Transmitter: Process{Auto: tr, Policy: FixedGap{C: 2}},
		Receiver:    Process{Auto: rc, Policy: FixedGap{C: 2}},
		Delay:       chanmodel.FixedDelay{Delay: 3},
		Stop:        StopAfterWrites(3),
	})
	if err != nil {
		t.Fatal(err)
	}
	return run
}

func TestTimelineRendersAllEventKinds(t *testing.T) {
	run := timelineRun(t)
	var sb strings.Builder
	if err := Timeline(&sb, run, "t", "r", 0); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"tick", "──▶", "(recv)", "write(1)", "in flight"} {
		if !strings.Contains(out, want) {
			t.Errorf("timeline missing %q:\n%s", want, out)
		}
	}
	// One row per trace event plus two header lines.
	if got := strings.Count(out, "\n"); got != len(run.Trace)+2 {
		t.Errorf("timeline rows = %d, want %d", got, len(run.Trace)+2)
	}
}

func TestTimelineMaxRows(t *testing.T) {
	run := timelineRun(t)
	var sb strings.Builder
	if err := Timeline(&sb, run, "t", "r", 2); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	if !strings.Contains(out, "more events") {
		t.Errorf("truncation note missing:\n%s", out)
	}
	if got := strings.Count(out, "\n"); got != 5 { // 2 header + 2 rows + note
		t.Errorf("rows = %d, want 5", got)
	}
}
