// Package mc is a small explicit-state model checker for the *untimed*
// semantics of the protocols: it exhaustively explores every interleaving
// of process steps and channel deliveries (the channel may reorder
// freely) and checks a safety property in every reachable state.
//
// Timed claims (A^α, A^β) cannot be verified this way — their correctness
// genuinely needs Σ/Δ — but A^γ's safety is ack-clocked and holds in the
// raw untimed composition, which this package proves exhaustively for
// small instances instead of sampling schedules. The checker also has
// teeth: enabling duplicate deliveries finds the real counterexample
// showing A^γ depends on the channel not duplicating (the paper's C(P)
// never duplicates — its fair executions pair sends and recvs
// bijectively).
package mc

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ioa"
	"repro/internal/wire"
)

// Node is an explorable process automaton: an I/O automaton with a
// canonical state key.
type Node interface {
	ioa.Automaton
	// Snapshot returns a canonical key of the node's mutable state.
	Snapshot() string
}

// System describes the composition to explore.
type System struct {
	// X is the input sequence; the property is "Written(R) is always a
	// prefix of X".
	X []wire.Bit
	// T and R are the processes in their initial states.
	T, R Node
	// ForkT and ForkR deep-copy a node (the checker owns the copies).
	ForkT, ForkR func(Node) (Node, error)
	// Written extracts Y from the receiver.
	Written func(Node) []wire.Bit
	// DupDeliveries also explores duplicate deliveries of in-flight
	// packets — behaviour outside the paper's channel; used to exhibit
	// counterexamples.
	DupDeliveries bool
	// LossyDeliveries also explores losing in-flight packets — likewise
	// outside the paper's channel (its fair executions pair every send
	// with a recv); used to exhibit liveness counterexamples.
	LossyDeliveries bool
	// MaxStates caps the exploration (default 1 << 20).
	MaxStates int
}

// Result reports the exploration outcome.
type Result struct {
	// States is the number of distinct states visited.
	States int
	// Transitions is the number of edges expanded.
	Transitions int
	// Terminals is the number of states with no state-changing move.
	Terminals int
	// Violation is the first violation found, nil if the property holds
	// everywhere.
	Violation *Violation
}

// Violation is a safety failure with its witness path.
type Violation struct {
	// Msg describes the failure.
	Msg string
	// Path is the action-label trace from the initial state.
	Path []string
}

// Error renders the violation.
func (v *Violation) Error() string {
	return fmt.Sprintf("mc: %s (path: %s)", v.Msg, strings.Join(v.Path, " -> "))
}

// state is one explored configuration. In-flight packets are kept per
// direction as sorted multisets (the channel reorders freely, so only the
// multiset matters).
type state struct {
	t, r Node
	// tr and rt hold in-flight packets per direction, sorted canonically.
	tr, rt []wire.Packet
}

func packetsKey(ps []wire.Packet) string {
	parts := make([]string, len(ps))
	for i, p := range ps {
		parts[i] = fmt.Sprintf("%d/%d/%d", p.Kind, p.Symbol, p.Tag)
	}
	return strings.Join(parts, ",")
}

func (s *state) key() string {
	return s.t.Snapshot() + " || " + s.r.Snapshot() +
		" || tr{" + packetsKey(s.tr) + "} rt{" + packetsKey(s.rt) + "}"
}

func (s *state) fork(sys *System) (*state, error) {
	t, err := sys.ForkT(s.t)
	if err != nil {
		return nil, err
	}
	r, err := sys.ForkR(s.r)
	if err != nil {
		return nil, err
	}
	return &state{
		t:  t,
		r:  r,
		tr: append([]wire.Packet(nil), s.tr...),
		rt: append([]wire.Packet(nil), s.rt...),
	}, nil
}

func packetLess(a, b wire.Packet) bool {
	if a.Kind != b.Kind {
		return a.Kind < b.Kind
	}
	if a.Symbol != b.Symbol {
		return a.Symbol < b.Symbol
	}
	return a.Tag < b.Tag
}

func insertSorted(ps []wire.Packet, p wire.Packet) []wire.Packet {
	i := sort.Search(len(ps), func(i int) bool { return !packetLess(ps[i], p) })
	ps = append(ps, wire.Packet{})
	copy(ps[i+1:], ps[i:])
	ps[i] = p
	return ps
}

func removeAt(ps []wire.Packet, i int) []wire.Packet {
	out := append([]wire.Packet(nil), ps[:i]...)
	return append(out, ps[i+1:]...)
}

// successor describes one move.
type successor struct {
	label string
	next  *state
}

// expand returns every state-changing move from s.
func (sys *System) expand(s *state) ([]successor, error) {
	var out []successor
	add := func(label string, n *state) {
		out = append(out, successor{label: label, next: n})
	}

	// Transmitter local step.
	if act, ok := s.t.NextLocal(); ok {
		n, err := s.fork(sys)
		if err != nil {
			return nil, err
		}
		if err := n.t.Apply(act); err != nil {
			return nil, fmt.Errorf("mc: transmitter %v: %w", act, err)
		}
		if send, isSend := act.(wire.Send); isSend && send.Dir == wire.TtoR {
			n.tr = insertSorted(n.tr, send.P)
		}
		add("t:"+act.String(), n)
	}

	// Receiver local step.
	if act, ok := s.r.NextLocal(); ok {
		n, err := s.fork(sys)
		if err != nil {
			return nil, err
		}
		if err := n.r.Apply(act); err != nil {
			return nil, fmt.Errorf("mc: receiver %v: %w", act, err)
		}
		if send, isSend := act.(wire.Send); isSend && send.Dir == wire.RtoT {
			n.rt = insertSorted(n.rt, send.P)
		}
		add("r:"+act.String(), n)
	}

	// Deliver (optionally duplicate or lose) each distinct in-flight
	// packet, in either direction.
	deliverAll := func(dir wire.Dir, flights []wire.Packet, apply func(n *state, p wire.Packet) error, strip func(n *state, i int)) error {
		for i := 0; i < len(flights); i++ {
			if i > 0 && flights[i] == flights[i-1] {
				continue // identical move
			}
			deliver := func(dup bool) error {
				n, err := s.fork(sys)
				if err != nil {
					return err
				}
				act := wire.Recv{Dir: dir, P: flights[i]}
				if err := apply(n, flights[i]); err != nil {
					return fmt.Errorf("mc: deliver %v: %w", act, err)
				}
				label := "chan:" + act.String()
				if dup {
					label += " (dup)"
				} else {
					strip(n, i)
				}
				add(label, n)
				return nil
			}
			if err := deliver(false); err != nil {
				return err
			}
			if sys.DupDeliveries {
				if err := deliver(true); err != nil {
					return err
				}
			}
			if sys.LossyDeliveries {
				n, err := s.fork(sys)
				if err != nil {
					return err
				}
				strip(n, i)
				add(fmt.Sprintf("chan:lose[%v] %v", dir, flights[i]), n)
			}
		}
		return nil
	}
	if err := deliverAll(wire.TtoR, s.tr,
		func(n *state, p wire.Packet) error { return n.r.Apply(wire.Recv{Dir: wire.TtoR, P: p}) },
		func(n *state, i int) { n.tr = removeAt(n.tr, i) },
	); err != nil {
		return nil, err
	}
	if err := deliverAll(wire.RtoT, s.rt,
		func(n *state, p wire.Packet) error { return n.t.Apply(wire.Recv{Dir: wire.RtoT, P: p}) },
		func(n *state, i int) { n.rt = removeAt(n.rt, i) },
	); err != nil {
		return nil, err
	}
	return out, nil
}

// Check explores the full reachable state space breadth-first and
// verifies in every state that Y is a prefix of X; in terminal states —
// no state-changing move exists — it additionally requires Y = X (nothing
// is in flight and nobody can act, so the run is over).
func Check(sys System) (*Result, error) {
	if sys.T == nil || sys.R == nil || sys.ForkT == nil || sys.ForkR == nil || sys.Written == nil {
		return nil, fmt.Errorf("mc: incomplete system")
	}
	if sys.MaxStates == 0 {
		sys.MaxStates = 1 << 20
	}
	initial := &state{t: sys.T, r: sys.R}
	res := &Result{}

	type meta struct {
		parent string
		label  string
	}
	seen := map[string]meta{initial.key(): {}}
	pathTo := func(k string) []string {
		var labels []string
		for k != "" {
			m := seen[k]
			if m.label == "" {
				break
			}
			labels = append(labels, m.label)
			k = m.parent
		}
		for i, j := 0, len(labels)-1; i < j; i, j = i+1, j-1 {
			labels[i], labels[j] = labels[j], labels[i]
		}
		return labels
	}
	checkPrefix := func(s *state, k string) *Violation {
		y := sys.Written(s.r)
		if len(y) > len(sys.X) {
			return &Violation{Msg: fmt.Sprintf("|Y| = %d exceeds |X| = %d", len(y), len(sys.X)), Path: pathTo(k)}
		}
		for i := range y {
			if y[i] != sys.X[i] {
				return &Violation{
					Msg:  fmt.Sprintf("Y[%d] = %v but X[%d] = %v (Y=%s)", i, y[i], i, sys.X[i], wire.BitsToString(y)),
					Path: pathTo(k),
				}
			}
		}
		return nil
	}

	queue := []*state{initial}
	keys := []string{initial.key()}
	res.States = 1
	if v := checkPrefix(initial, keys[0]); v != nil {
		res.Violation = v
		return res, nil
	}

	for len(queue) > 0 {
		s := queue[0]
		k := keys[0]
		queue, keys = queue[1:], keys[1:]

		succs, err := sys.expand(s)
		if err != nil {
			// An Apply failure during exploration IS a reachable
			// misbehaviour (e.g. a burst decoding to a non-codeword under
			// duplicate deliveries): report it as a violation with its
			// witness path.
			res.Violation = &Violation{Msg: err.Error(), Path: pathTo(k)}
			return res, nil
		}
		progressed := false
		for _, succ := range succs {
			res.Transitions++
			nk := succ.next.key()
			if nk == k {
				continue // self-loop (idle actions)
			}
			progressed = true
			if _, dup := seen[nk]; dup {
				continue
			}
			seen[nk] = meta{parent: k, label: succ.label}
			res.States++
			if res.States > sys.MaxStates {
				return res, fmt.Errorf("mc: state space exceeds %d states", sys.MaxStates)
			}
			if v := checkPrefix(succ.next, nk); v != nil {
				res.Violation = v
				return res, nil
			}
			queue = append(queue, succ.next)
			keys = append(keys, nk)
		}
		if !progressed {
			res.Terminals++
			y := sys.Written(s.r)
			if wire.BitsToString(y) != wire.BitsToString(sys.X) {
				res.Violation = &Violation{
					Msg:  fmt.Sprintf("terminal state with Y = %s, want X = %s", wire.BitsToString(y), wire.BitsToString(sys.X)),
					Path: pathTo(k),
				}
				return res, nil
			}
		}
	}
	return res, nil
}
