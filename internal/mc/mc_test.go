package mc

import (
	"strings"
	"testing"

	"repro/internal/rstp"
	"repro/internal/wire"
)

func gammaSystem(t *testing.T, p rstp.Params, k int, xBits string, dup bool) System {
	t.Helper()
	x, err := wire.ParseBits(xBits)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rstp.NewGammaTransmitter(p, k, x)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := rstp.NewGammaReceiver(p, k)
	if err != nil {
		t.Fatal(err)
	}
	return System{
		X: x,
		T: tr,
		R: rc,
		ForkT: func(n Node) (Node, error) {
			return n.(*rstp.GammaTransmitter).Fork()
		},
		ForkR: func(n Node) (Node, error) {
			return n.(*rstp.GammaReceiver).Fork()
		},
		Written: func(n Node) []wire.Bit {
			return n.(*rstp.GammaReceiver).WrittenBits()
		},
		DupDeliveries: dup,
	}
}

// TestGammaSafeUnderAllInterleavings is the headline model-checking
// result: A^γ's prefix safety holds in EVERY reachable state of the
// untimed composition with an arbitrarily reordering channel — no
// sampling, no schedules, the full state space.
func TestGammaSafeUnderAllInterleavings(t *testing.T) {
	tests := []struct {
		name string
		p    rstp.Params
		k    int
		x    string
	}{
		// δ2 = 2, 1 bit/block, 3 blocks.
		{name: "delta2=2 three blocks", p: rstp.Params{C1: 1, C2: 2, D: 5}, k: 2, x: "101"},
		// δ2 = 3, 2 bits/block, 2 blocks.
		{name: "delta2=3 two blocks", p: rstp.Params{C1: 1, C2: 1, D: 3}, k: 2, x: "1001"},
		// k = 3, δ2 = 2, μ_3(2) = 6, 2 bits/block.
		{name: "k=3 two blocks", p: rstp.Params{C1: 1, C2: 2, D: 5}, k: 3, x: "0111"},
		// δ2 = 4, 2 bits/block, 4 blocks: a deeper pipeline.
		{name: "delta2=4 four blocks", p: rstp.Params{C1: 1, C2: 1, D: 4}, k: 2, x: "10011100"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			res, err := Check(gammaSystem(t, tt.p, tt.k, tt.x, false))
			if err != nil {
				t.Fatal(err)
			}
			if res.Violation != nil {
				t.Fatalf("violation: %v", res.Violation)
			}
			if res.States < 10 {
				t.Errorf("suspiciously few states: %d", res.States)
			}
			if res.Terminals == 0 {
				t.Error("no terminal state reached — liveness suspect")
			}
			t.Logf("states=%d transitions=%d terminals=%d", res.States, res.Transitions, res.Terminals)
		})
	}
}

// TestGammaUnsafeUnderDuplication: the checker has teeth. With duplicate
// deliveries allowed — behaviour the paper's channel C(P) excludes by its
// send/recv bijection — the exploration finds a real counterexample
// (an early-advanced burst interleaving at the receiver).
func TestGammaUnsafeUnderDuplication(t *testing.T) {
	res, err := Check(gammaSystem(t, rstp.Params{C1: 1, C2: 2, D: 5}, 2, "101", true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("expected a violation under duplicate deliveries")
	}
	if len(res.Violation.Path) == 0 {
		t.Error("violation should carry a witness path")
	}
	if !strings.Contains(res.Violation.Path[len(res.Violation.Path)-1], "dup") &&
		!pathContainsDup(res.Violation.Path) {
		t.Errorf("witness path should involve a duplicate delivery: %v", res.Violation.Path)
	}
	t.Logf("counterexample (%d steps): %s", len(res.Violation.Path), res.Violation.Error())
}

func pathContainsDup(path []string) bool {
	for _, step := range path {
		if strings.Contains(step, "dup") {
			return true
		}
	}
	return false
}

// TestCheckValidation: incomplete systems and state caps are rejected.
func TestCheckValidation(t *testing.T) {
	if _, err := Check(System{}); err == nil {
		t.Error("incomplete system should fail")
	}
	sys := gammaSystem(t, rstp.Params{C1: 1, C2: 1, D: 3}, 2, "1001", false)
	sys.MaxStates = 5
	if _, err := Check(sys); err == nil || !strings.Contains(err.Error(), "exceeds") {
		t.Errorf("tiny cap should trip: %v", err)
	}
}

// TestForkIndependence: forked automata do not share mutable state.
func TestForkIndependence(t *testing.T) {
	p := rstp.Params{C1: 1, C2: 2, D: 5}
	x, _ := wire.ParseBits("10")
	tr, err := rstp.NewGammaTransmitter(p, 2, x)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := tr.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if cp.Snapshot() != tr.Snapshot() {
		t.Fatal("fork changed state")
	}
	// Step the copy; the original must not move.
	act, ok := cp.NextLocal()
	if !ok {
		t.Fatal("copy has no action")
	}
	if err := cp.Apply(act); err != nil {
		t.Fatal(err)
	}
	if cp.Snapshot() == tr.Snapshot() {
		t.Fatal("copy step did not change its state")
	}

	rc, err := rstp.NewGammaReceiver(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	rcp, err := rc.Fork()
	if err != nil {
		t.Fatal(err)
	}
	if err := rcp.Apply(wire.Recv{Dir: wire.TtoR, P: wire.DataPacket(0)}); err != nil {
		t.Fatal(err)
	}
	if rc.Snapshot() == rcp.Snapshot() {
		t.Fatal("receiver fork shares state")
	}
}
