package mc

import (
	"strings"
	"testing"

	"repro/internal/rstp"
	"repro/internal/stp"
	"repro/internal/wire"
)

func abSystem(t *testing.T, xBits string, dup bool) System {
	t.Helper()
	x, err := wire.ParseBits(xBits)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := stp.NewABTransmitter(x)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := stp.NewABReceiver()
	if err != nil {
		t.Fatal(err)
	}
	return System{
		X: x, T: tr, R: rc,
		ForkT:         func(n Node) (Node, error) { return n.(*stp.ABTransmitter).Fork() },
		ForkR:         func(n Node) (Node, error) { return n.(*stp.ABReceiver).Fork() },
		Written:       func(n Node) []wire.Bit { return n.(*stp.ABReceiver).WrittenBits() },
		DupDeliveries: dup,
	}
}

// TestAlternatingBitUnsafeUnderReorder rediscovers the [WZ89]
// impossibility automatically: with >= 3 messages, a freely-reordering
// channel (no duplication needed!) lets a stale tag-0 acknowledgement
// arrive while message 3 (tag 0 again) is current, advancing the
// transmitter past an undelivered message. The checker finds the
// counterexample that internal/stp's tests script by hand.
func TestAlternatingBitUnsafeUnderReorder(t *testing.T) {
	res, err := Check(abSystem(t, "101", false))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("expected the alternating bit to fail under reordering")
	}
	t.Logf("counterexample (%d steps): %s", len(res.Violation.Path), res.Violation.Error())
}

// TestAlternatingBitDupAlsoBreaks: duplication gives the adversary even
// more room; still broken.
func TestAlternatingBitDupAlsoBreaks(t *testing.T) {
	res, err := Check(abSystem(t, "101", true))
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("expected a violation with duplication enabled")
	}
}

// TestGammaLossBreaksLiveness: the paper's channel never loses packets
// (fair executions pair sends with recvs). Allowing loss lets the
// adversary strand A^γ short of completion: the checker reports a
// terminal state with Y != X.
func TestGammaLossBreaksLiveness(t *testing.T) {
	p := rstp.Params{C1: 1, C2: 2, D: 5}
	x, _ := wire.ParseBits("101")
	tr, err := rstp.NewGammaTransmitter(p, 2, x)
	if err != nil {
		t.Fatal(err)
	}
	rc, err := rstp.NewGammaReceiver(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Check(System{
		X: x, T: tr, R: rc,
		ForkT:           func(n Node) (Node, error) { return n.(*rstp.GammaTransmitter).Fork() },
		ForkR:           func(n Node) (Node, error) { return n.(*rstp.GammaReceiver).Fork() },
		Written:         func(n Node) []wire.Bit { return n.(*rstp.GammaReceiver).WrittenBits() },
		LossyDeliveries: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation == nil {
		t.Fatal("expected a stranded terminal state under loss")
	}
	if !strings.Contains(res.Violation.Msg, "terminal state") {
		t.Errorf("expected a liveness (terminal) violation, got: %s", res.Violation.Msg)
	}
	if !pathContainsLoss(res.Violation.Path) {
		t.Errorf("witness should involve a loss: %v", res.Violation.Path)
	}
}

func pathContainsLoss(path []string) bool {
	for _, step := range path {
		if strings.Contains(step, "lose") {
			return true
		}
	}
	return false
}
