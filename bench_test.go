// Benchmarks regenerating every paper table/figure (experiments E1..E9 of
// DESIGN.md) plus microbenchmarks on the engine's hot paths. Each ExxYyy
// benchmark runs the corresponding experiment end to end; custom metrics
// surface the headline quantity of that experiment so `go test -bench=.`
// output doubles as a results summary.
package repro_test

import (
	"math/rand"
	"strconv"
	"testing"

	"repro"
	"repro/internal/experiments"
	"repro/internal/mc"
	"repro/internal/multiset"
	"repro/internal/rstp"
	"repro/internal/tmc"
	"repro/internal/wire"
)

func benchCfg() experiments.Config { return experiments.Config{Seed: 1, Quick: true} }

// runExperiment drives one experiment generator b.N times.
func runExperiment(b *testing.B, gen experiments.Generator) experiments.Table {
	b.Helper()
	var table experiments.Table
	for i := 0; i < b.N; i++ {
		var err error
		table, err = gen(benchCfg())
		if err != nil {
			b.Fatal(err)
		}
	}
	return table
}

// metric extracts a float column from the first row of a table.
func metric(b *testing.B, t experiments.Table, col string) float64 {
	b.Helper()
	for i, h := range t.Header {
		if h == col {
			v, err := strconv.ParseFloat(t.Rows[0][i], 64)
			if err != nil {
				b.Fatalf("parse %s: %v", col, err)
			}
			return v
		}
	}
	b.Fatalf("no column %q", col)
	return 0
}

func BenchmarkE1AlphaEffort(b *testing.B) {
	t := runExperiment(b, experiments.E1AlphaEffort)
	b.ReportMetric(metric(b, t, "measured"), "ticks/msg")
}

func BenchmarkE2PassiveLowerBound(b *testing.B) {
	t := runExperiment(b, experiments.E2PassiveLowerBound)
	b.ReportMetric(metric(b, t, "lower"), "lb-ticks/msg")
}

func BenchmarkE3ActiveLowerBound(b *testing.B) {
	t := runExperiment(b, experiments.E3ActiveLowerBound)
	b.ReportMetric(metric(b, t, "lower"), "lb-ticks/msg")
}

func BenchmarkE4BetaEffort(b *testing.B) {
	t := runExperiment(b, experiments.E4BetaEffort)
	b.ReportMetric(metric(b, t, "measured(worst)"), "ticks/msg")
	b.ReportMetric(metric(b, t, "meas/lower"), "tightness")
}

func BenchmarkE5GammaEffort(b *testing.B) {
	t := runExperiment(b, experiments.E5GammaEffort)
	b.ReportMetric(metric(b, t, "measured(worst)"), "ticks/msg")
	b.ReportMetric(metric(b, t, "meas/lower"), "tightness")
}

func BenchmarkE6IntervalAdversary(b *testing.B) {
	t := runExperiment(b, experiments.E6IntervalAdversary)
	b.ReportMetric(metric(b, t, "observed/floor"), "rounds-vs-floor")
}

func BenchmarkE7ProfileCounting(b *testing.B) {
	runExperiment(b, experiments.E7ProfileCounting)
}

func BenchmarkE8Crossover(b *testing.B) {
	runExperiment(b, experiments.E8Crossover)
}

func BenchmarkE9Baseline(b *testing.B) {
	t := runExperiment(b, experiments.E9Baseline)
	b.ReportMetric(metric(b, t, "ticks/message"), "ab-lossless")
}

func BenchmarkE10WindowSweep(b *testing.B) {
	t := runExperiment(b, experiments.E10WindowSweep)
	b.ReportMetric(metric(b, t, "measured"), "ticks/msg-slack-max")
}

func BenchmarkE11AsymmetricClocks(b *testing.B) {
	t := runExperiment(b, experiments.E11AsymmetricClocks)
	b.ReportMetric(metric(b, t, "γ/β"), "gamma-vs-beta")
}

func BenchmarkE12BurstAblation(b *testing.B) {
	runExperiment(b, experiments.E12BurstAblation)
}

func BenchmarkE13AckQueueing(b *testing.B) {
	t := runExperiment(b, experiments.E13AckQueueing)
	b.ReportMetric(metric(b, t, "measured"), "ticks/msg")
}

func BenchmarkE14OrderedDecoder(b *testing.B) {
	runExperiment(b, experiments.E14OrderedDecoder)
}

func BenchmarkE15DelaySweep(b *testing.B) {
	t := runExperiment(b, experiments.E15DelaySweep)
	b.ReportMetric(metric(b, t, "α/β"), "alpha-over-beta-d8")
}

func BenchmarkE16Verification(b *testing.B) {
	t := runExperiment(b, experiments.E16Verification)
	b.ReportMetric(metric(b, t, "states"), "states-row0")
}

func BenchmarkE17FaultSweep(b *testing.B) {
	runExperiment(b, experiments.E17FaultSweep)
}

func BenchmarkE18CrashSweep(b *testing.B) {
	runExperiment(b, experiments.E18CrashSweep)
}

// Microbenchmarks: protocol throughput on the engine's hot path.

func benchSolutionRun(b *testing.B, mk func(rstp.Params) (repro.Solution, error), p rstp.Params) {
	b.Helper()
	s, err := mk(p)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	x := repro.RandomBits(64*s.BlockBits, rng.Uint64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		run, err := s.Run(x, repro.RunOptions{})
		if err != nil {
			b.Fatal(err)
		}
		if run.WriteCount != len(x) {
			b.Fatal("incomplete run")
		}
	}
	b.ReportMetric(float64(len(x)), "bits/op")
}

func BenchmarkRunAlpha(b *testing.B) {
	benchSolutionRun(b, repro.Alpha, rstp.Params{C1: 2, C2: 3, D: 12})
}

func BenchmarkRunBetaK4(b *testing.B) {
	benchSolutionRun(b, func(p rstp.Params) (repro.Solution, error) { return repro.Beta(p, 4) },
		rstp.Params{C1: 2, C2: 3, D: 12})
}

func BenchmarkRunBetaK64(b *testing.B) {
	benchSolutionRun(b, func(p rstp.Params) (repro.Solution, error) { return repro.Beta(p, 64) },
		rstp.Params{C1: 2, C2: 3, D: 12})
}

func BenchmarkRunGammaK4(b *testing.B) {
	benchSolutionRun(b, func(p rstp.Params) (repro.Solution, error) { return repro.Gamma(p, 4) },
		rstp.Params{C1: 2, C2: 3, D: 12})
}

func BenchmarkModelCheckGammaUntimed(b *testing.B) {
	p := rstp.Params{C1: 1, C2: 1, D: 4}
	x, err := wire.ParseBits("10011100")
	if err != nil {
		b.Fatal(err)
	}
	var states int
	for i := 0; i < b.N; i++ {
		tr, err := rstp.NewGammaTransmitter(p, 2, x)
		if err != nil {
			b.Fatal(err)
		}
		rc, err := rstp.NewGammaReceiver(p, 2)
		if err != nil {
			b.Fatal(err)
		}
		res, err := mc.Check(mc.System{
			X: x, T: tr, R: rc,
			ForkT:   func(n mc.Node) (mc.Node, error) { return n.(*rstp.GammaTransmitter).Fork() },
			ForkR:   func(n mc.Node) (mc.Node, error) { return n.(*rstp.GammaReceiver).Fork() },
			Written: func(n mc.Node) []wire.Bit { return n.(*rstp.GammaReceiver).WrittenBits() },
		})
		if err != nil || res.Violation != nil {
			b.Fatalf("check failed: %v %v", err, res.Violation)
		}
		states = res.States
	}
	b.ReportMetric(float64(states), "states")
}

func BenchmarkModelCheckBetaTimed(b *testing.B) {
	p := rstp.Params{C1: 1, C2: 1, D: 3}
	x, err := wire.ParseBits("1001")
	if err != nil {
		b.Fatal(err)
	}
	var states int
	for i := 0; i < b.N; i++ {
		tr, err := rstp.NewBetaTransmitter(p, 2, x)
		if err != nil {
			b.Fatal(err)
		}
		rc, err := rstp.NewBetaReceiver(p, 2)
		if err != nil {
			b.Fatal(err)
		}
		res, err := tmc.Check(tmc.System{
			X: x, T: tr, R: rc,
			ForkT:   func(n tmc.Node) (tmc.Node, error) { return n.(*rstp.BetaTransmitter).Fork() },
			ForkR:   func(n tmc.Node) (tmc.Node, error) { return n.(*rstp.BetaReceiver).Fork() },
			Written: func(n tmc.Node) []wire.Bit { return n.(*rstp.BetaReceiver).WrittenBits() },
			C1:      p.C1, C2: p.C2, D1: 0, D2: p.D,
		})
		if err != nil || res.Violation != nil {
			b.Fatalf("check failed: %v %v", err, res.Violation)
		}
		states = res.States
	}
	b.ReportMetric(float64(states), "states")
}

func BenchmarkCodecRoundTrip(b *testing.B) {
	codec, err := multiset.NewCodec(16, 24)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	block := wire.RandomBits(codec.BlockBits(), rng.Uint64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m, err := codec.Encode(block)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := codec.Decode(m); err != nil {
			b.Fatal(err)
		}
	}
}
